//! Communication links and their latency models.
//!
//! The paper analyses two communication models over point-to-point FIFO links:
//!
//! * the **synchronous** model, where every link has latency exactly one time unit
//!   (Section 3.1), and
//! * the **asynchronous** model, where each message is delayed by an arbitrary but
//!   finite amount, normalised so that the slowest message takes at most one unit
//!   (Section 3.8).
//!
//! [`LatencyModel`] captures both, plus weighted-link variants used when simulating
//! a network whose edges have non-uniform cost. [`LinkState`] enforces the FIFO
//! property per directed link regardless of the sampled latencies.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How long a message takes to traverse a link.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly one time unit (the paper's synchronous model).
    #[default]
    Unit,
    /// Every message takes exactly `units` time units.
    Fixed {
        /// Latency in time units.
        units: f64,
    },
    /// Every message on link (u,v) takes the link's weight in time units.
    ///
    /// Weights are supplied via [`LinkState::set_weight`]; unknown links fall back to 1.
    EdgeWeight,
    /// Each message independently takes a uniformly random latency in `[lo, hi]` units
    /// (the asynchronous model; the paper normalises `hi` to 1).
    Uniform {
        /// Minimum latency in units.
        lo: f64,
        /// Maximum latency in units.
        hi: f64,
    },
    /// Each message takes the link weight scaled by a uniformly random factor in
    /// `[lo_factor, 1.0]` — an asynchronous model on a weighted network where the
    /// *worst case* per link equals the weight, matching the paper's normalisation.
    ScaledUniform {
        /// Minimum scaling factor (clamped to `(0, 1]`).
        lo_factor: f64,
    },
}

impl LatencyModel {
    /// Sample the latency of one message on the directed link `(from, to)` whose
    /// weight is `weight` time units.
    pub fn sample(&self, weight: f64, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Unit => SimDuration::unit(),
            LatencyModel::Fixed { units } => SimDuration::from_units_f64(units),
            LatencyModel::EdgeWeight => SimDuration::from_units_f64(weight),
            LatencyModel::Uniform { lo, hi } => {
                SimDuration::from_units_f64(rng.uniform(lo, hi.max(lo)))
            }
            LatencyModel::ScaledUniform { lo_factor } => {
                let lo = lo_factor.clamp(f64::EPSILON, 1.0);
                SimDuration::from_units_f64(weight * rng.uniform(lo, 1.0))
            }
        }
    }

    /// An upper bound (in units) on the latency this model can produce for a link of
    /// the given weight, used for normalisation in analysis.
    pub fn worst_case_units(&self, weight: f64) -> f64 {
        match *self {
            LatencyModel::Unit => 1.0,
            LatencyModel::Fixed { units } => units,
            LatencyModel::EdgeWeight => weight,
            LatencyModel::Uniform { lo, hi } => hi.max(lo),
            LatencyModel::ScaledUniform { .. } => weight,
        }
    }
}

/// Per-directed-link bookkeeping: weights and FIFO enforcement.
///
/// FIFO links are a correctness requirement of the arrow protocol (the network is
/// "a set of point-to-point FIFO communication links", Section 2). With random
/// latencies, a later message could otherwise overtake an earlier one; we prevent
/// that by never scheduling a delivery earlier than the previously scheduled
/// delivery on the same directed link.
#[derive(Debug, Default)]
pub struct LinkState {
    weights: HashMap<(usize, usize), f64>,
    last_delivery: HashMap<(usize, usize), SimTime>,
    /// FIFO floors of the *direct* (explicit-latency) channel of each directed pair,
    /// kept separate from `last_delivery` so out-of-band traffic (e.g. requester
    /// acknowledgements routed over graph shortest paths) never delays — and is never
    /// delayed by — the link-model protocol traffic on the same pair.
    last_direct: HashMap<(usize, usize), SimTime>,
}

impl LinkState {
    /// Create empty link state (all weights default to 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the weight of the undirected link `{u, v}` (both directions).
    pub fn set_weight(&mut self, u: usize, v: usize, weight: f64) {
        self.weights.insert((u, v), weight);
        self.weights.insert((v, u), weight);
    }

    /// Weight of directed link `(from, to)`; 1.0 if never set.
    pub fn weight(&self, from: usize, to: usize) -> f64 {
        *self.weights.get(&(from, to)).unwrap_or(&1.0)
    }

    /// Compute the delivery time for a message sent at `now` on `(from, to)` with the
    /// given latency model, enforcing FIFO per directed link, and record it.
    ///
    /// `jitter` is the scheduling jitter of [`crate::sim::LocalOrder::Random`]. It is
    /// folded in *before* the FIFO floor is applied and the floored result is what
    /// gets recorded, so jitter can never reorder two messages on the same directed
    /// link — the floor always reflects the actual (jittered) delivery time.
    pub fn delivery_time(
        &mut self,
        from: usize,
        to: usize,
        now: SimTime,
        model: &LatencyModel,
        rng: &mut SimRng,
        jitter: SimDuration,
    ) -> SimTime {
        let weight = self.weight(from, to);
        let latency = model.sample(weight, rng);
        let naive = now + latency + jitter;
        let fifo_floor = self
            .last_delivery
            .get(&(from, to))
            .copied()
            .unwrap_or(SimTime::ZERO);
        let delivery = naive.max(fifo_floor);
        self.last_delivery.insert((from, to), delivery);
        delivery
    }

    /// Delivery time for a *direct* send: the message takes exactly `latency`
    /// (plus jitter), independent of the link's weight and latency model. Direct
    /// sends form their own FIFO channel per directed pair — see [`LinkState`]'s
    /// `last_direct` field for why it is kept separate from link traffic.
    pub fn direct_delivery_time(
        &mut self,
        from: usize,
        to: usize,
        now: SimTime,
        latency: SimDuration,
        jitter: SimDuration,
    ) -> SimTime {
        let naive = now + latency + jitter;
        let fifo_floor = self
            .last_direct
            .get(&(from, to))
            .copied()
            .unwrap_or(SimTime::ZERO);
        let delivery = naive.max(fifo_floor);
        self.last_direct.insert((from, to), delivery);
        delivery
    }

    /// Number of distinct directed links with an explicit weight.
    pub fn weighted_link_count(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_model_is_one_unit() {
        let mut rng = SimRng::new(1);
        let d = LatencyModel::Unit.sample(5.0, &mut rng);
        assert_eq!(d, SimDuration::unit());
        assert_eq!(LatencyModel::Unit.worst_case_units(5.0), 1.0);
    }

    #[test]
    fn edge_weight_model_uses_weight() {
        let mut rng = SimRng::new(1);
        let d = LatencyModel::EdgeWeight.sample(3.5, &mut rng);
        assert!((d.as_units_f64() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_model_within_bounds() {
        let mut rng = SimRng::new(2);
        let m = LatencyModel::Uniform { lo: 0.25, hi: 1.0 };
        for _ in 0..500 {
            let d = m.sample(1.0, &mut rng).as_units_f64();
            assert!((0.25..=1.0).contains(&d), "latency {d}");
        }
        assert_eq!(m.worst_case_units(1.0), 1.0);
    }

    #[test]
    fn scaled_uniform_bounded_by_weight() {
        let mut rng = SimRng::new(3);
        let m = LatencyModel::ScaledUniform { lo_factor: 0.1 };
        for _ in 0..500 {
            let d = m.sample(4.0, &mut rng).as_units_f64();
            assert!(d <= 4.0 + 1e-9 && d > 0.0);
        }
        assert_eq!(m.worst_case_units(4.0), 4.0);
    }

    #[test]
    fn link_weights_are_symmetric_by_default_setter() {
        let mut ls = LinkState::new();
        ls.set_weight(1, 2, 2.5);
        assert_eq!(ls.weight(1, 2), 2.5);
        assert_eq!(ls.weight(2, 1), 2.5);
        assert_eq!(ls.weight(0, 9), 1.0);
    }

    #[test]
    fn fifo_is_enforced_under_random_latency() {
        let mut ls = LinkState::new();
        let mut rng = SimRng::new(4);
        let model = LatencyModel::Uniform { lo: 0.01, hi: 1.0 };
        let mut last = SimTime::ZERO;
        // Send a burst of messages at the same instant; deliveries must be non-decreasing.
        for _ in 0..200 {
            let d = ls.delivery_time(
                0,
                1,
                SimTime::from_units(10),
                &model,
                &mut rng,
                SimDuration::ZERO,
            );
            assert!(d >= last, "FIFO violated: {d} < {last}");
            last = d;
        }
    }

    #[test]
    fn fifo_is_enforced_with_random_jitter() {
        // Regression: jitter must be folded in *before* the FIFO floor. If it were
        // added after, a small-jitter message could undercut the floored delivery of
        // its large-jitter predecessor on the same directed link.
        let mut ls = LinkState::new();
        let mut rng = SimRng::new(6);
        let model = LatencyModel::Uniform { lo: 0.05, hi: 1.0 };
        let mut last = SimTime::ZERO;
        for _ in 0..500 {
            let jitter = SimDuration::from_subticks(rng.uniform_u64(0, 100));
            let d = ls.delivery_time(0, 1, SimTime::from_units(3), &model, &mut rng, jitter);
            assert!(d >= last, "FIFO violated: {d} < {last}");
            last = d;
        }
    }

    #[test]
    fn fifo_applies_per_directed_link_only() {
        let mut ls = LinkState::new();
        let mut rng = SimRng::new(5);
        let model = LatencyModel::Fixed { units: 1.0 };
        let d1 = ls.delivery_time(
            0,
            1,
            SimTime::from_units(100),
            &model,
            &mut rng,
            SimDuration::ZERO,
        );
        // Opposite direction is unconstrained by the first delivery.
        let d2 = ls.delivery_time(
            1,
            0,
            SimTime::from_units(0),
            &model,
            &mut rng,
            SimDuration::ZERO,
        );
        assert!(d2 < d1);
    }

    #[test]
    fn direct_channel_is_fifo_but_independent_of_link_traffic() {
        let mut ls = LinkState::new();
        let mut rng = SimRng::new(7);
        let model = LatencyModel::Fixed { units: 10.0 };
        // A slow link-model message must not delay a fast direct send on the same pair.
        let slow = ls.delivery_time(0, 1, SimTime::ZERO, &model, &mut rng, SimDuration::ZERO);
        let fast = ls.direct_delivery_time(
            0,
            1,
            SimTime::ZERO,
            SimDuration::from_units(1),
            SimDuration::ZERO,
        );
        assert!(fast < slow);
        // Direct sends among themselves are FIFO.
        let later = ls.direct_delivery_time(
            0,
            1,
            SimTime::ZERO,
            SimDuration::from_units_f64(0.25),
            SimDuration::ZERO,
        );
        assert!(later >= fast, "direct channel reordered: {later} < {fast}");
    }
}
