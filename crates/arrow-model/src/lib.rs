//! Bounded explicit-state model checking for the arrow protocol's shared
//! [`ArrowCore`](arrow_core::live::ArrowCore) state machine.
//!
//! The conformance harness samples behaviour: seeded workloads, seeded fault
//! schedules, randomized sweeps. This crate closes the gap for small
//! configurations by checking **all** of them: every labelled spanning tree up
//! to a node bound, every request placement, every message interleaving the
//! per-link FIFO transports could produce, and every crash/recovery schedule
//! within an episode budget. A system state is the product of per-node
//! [`ArrowCore`]s (the *same* pure state machine the thread and socket tiers
//! drive in production), per-directed-link FIFO frame queues, and the
//! request/fault bookkeeping; transitions deliver one frame, issue one
//! request, crash/restart one node, deliver one epoch-detection signal, or
//! release one granted token.
//!
//! Exploration is a DFS with two orthogonal prunings, both optional so their
//! soundness can be cross-checked (`--no-dedup`, `--no-reduce`):
//!
//! * **canonical-hash dedup** — states hash to a 128-bit canonical fingerprint
//!   ([`SysState::hash128`]); revisits are skipped under the sleep-set subset
//!   rule (see [`explore()`]);
//! * **sleep-set partial-order reduction** — commuting independent steps
//!   (disjoint-footprint deliveries, issues at different nodes, …) are
//!   explored in one order instead of all ([`reduce`]). Sleep sets still visit
//!   every reachable *state*, so invariant coverage is unaffected.
//!
//! Safety invariants are checked at every state, quiescence invariants at
//! every drained state ([`invariants`]); a violation aborts the search and is
//! exported as a conformance replay file with the transition trace embedded as
//! comments ([`replay`]), so the model-level counterexample can be re-driven
//! through the live tiers with the existing `conformance --replay` tooling.
//!
//! One sweep configuration subsumes the smaller ones: quiescence is evaluated
//! at every drained state *whatever budget remains*, so exploring with a
//! request budget of 4 also verifies every execution that stops after 0–3
//! requests, and a crash budget of 1 also covers every crash-free execution.
//! Verifying "all trees ≤ 5 nodes, ≤ 2 objects, ≤ 4 requests, ≤ 1 crash
//! episode" therefore takes exactly one [`sweep`] call per tree.
//!
//! [`ArrowCore`]: arrow_core::live::ArrowCore
//! [`SysState::hash128`]: state::SysState::hash128

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod explore;
pub mod invariants;
pub mod reduce;
pub mod replay;
pub mod state;
pub mod transition;

pub use explore::{explore, CheckReport, Counterexample, ExploreConfig, ExploreStats};
pub use invariants::{ModelInvariant, ModelViolation};
pub use replay::export_replay;
pub use state::SysState;
pub use transition::{BugSwitch, Transition};

use netgraph::{Graph, NodeId, RootedTree};
use std::collections::BTreeSet;

/// One bounded configuration to verify: a spanning tree plus the model's
/// nondeterminism budgets. Everything else — which node issues which request
/// for which object, when the crash hits, how messages interleave — is folded
/// into the transition relation, so a single exploration covers all of it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The spanning tree the protocol runs on (root = node 0 by convention).
    pub tree: RootedTree,
    /// Number of directory objects.
    pub objects: usize,
    /// Total request budget across all nodes and objects.
    pub max_requests: usize,
    /// Crash/restart episode budget (0 = fault-free model).
    pub crash_episodes: usize,
    /// Waiter-abandonment budget: how many pending acquires may time out and
    /// drop their reply channel (the PR 6 orphaned-grant trigger — a grant
    /// arriving for a vanished waiter must be self-released by the runtime).
    /// Unlike a crash, abandonment bumps no epoch, so nothing ever cleans up a
    /// wedged token except the self-release fix itself.
    pub abandons: usize,
}

impl Scenario {
    /// A fault-free scenario on `tree`.
    pub fn fault_free(tree: RootedTree, objects: usize, max_requests: usize) -> Self {
        Scenario {
            tree,
            objects,
            max_requests,
            crash_episodes: 0,
            abandons: 0,
        }
    }
}

/// Decode a Prüfer sequence over `0..n` into the corresponding labelled tree.
fn prufer_decode(n: usize, seq: &[NodeId]) -> Graph {
    debug_assert_eq!(seq.len(), n.saturating_sub(2));
    let mut g = Graph::new(n);
    if n == 2 {
        g.add_edge(0, 1);
        return g;
    }
    let mut degree = vec![1usize; n];
    for &p in seq {
        degree[p] += 1;
    }
    let mut leaves: BTreeSet<NodeId> = (0..n).filter(|&v| degree[v] == 1).collect();
    for &p in seq {
        let leaf = *leaves.iter().next().expect("prufer decoding invariant");
        leaves.remove(&leaf);
        g.add_weighted_edge(leaf, p, 1.0);
        degree[p] -= 1;
        if degree[p] == 1 {
            leaves.insert(p);
        }
    }
    let rest: Vec<NodeId> = leaves.into_iter().collect();
    g.add_weighted_edge(rest[0], rest[1], 1.0);
    g
}

/// Every labelled tree on `n` nodes, rooted at node 0, via exhaustive Prüfer
/// enumeration (`n^(n-2)` trees; 125 at `n = 5`).
pub fn enumerate_trees(n: usize) -> Vec<RootedTree> {
    assert!(n >= 1, "need at least one node");
    if n == 1 {
        return vec![RootedTree::from_parents(&[None])];
    }
    if n == 2 {
        return vec![RootedTree::from_tree_graph(&prufer_decode(2, &[]), 0)];
    }
    let len = n - 2;
    let mut out = Vec::new();
    let mut seq = vec![0 as NodeId; len];
    loop {
        out.push(RootedTree::from_tree_graph(&prufer_decode(n, &seq), 0));
        // Odometer increment over base-n digits.
        let mut i = 0;
        loop {
            if i == len {
                return out;
            }
            seq[i] += 1;
            if seq[i] < n {
                break;
            }
            seq[i] = 0;
            i += 1;
        }
    }
}

/// AHU canonical form of the subtree rooted at `v`: children's forms, sorted.
fn ahu(tree: &RootedTree, v: NodeId) -> String {
    let mut kids: Vec<String> = tree.children(v).iter().map(|&c| ahu(tree, c)).collect();
    kids.sort_unstable();
    format!("({})", kids.concat())
}

/// One representative per rooted-isomorphism class of trees on `n` nodes
/// (AHU canonical form keyed on the root): 2 classes at `n = 3`, 4 at
/// `n = 4`, 9 at `n = 5`.
///
/// Protocol behaviour depends on the tree only through its shape relative to
/// the root — node labels appear in request ids but never influence routing
/// decisions — so exploring one labelling per class gives the same invariant
/// coverage as the full labelled enumeration at a fraction of the cost. The
/// conformance-style paranoia check (run both, compare verdicts) lives in the
/// workspace test suite rather than being assumed here.
pub fn representative_trees(n: usize) -> Vec<RootedTree> {
    let mut seen = BTreeSet::new();
    enumerate_trees(n)
        .into_iter()
        .filter(|t| seen.insert(ahu(t, t.root())))
        .collect()
}

/// Aggregated outcome of sweeping one budget configuration over many trees.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Scenarios explored (one per tree).
    pub scenarios: u64,
    /// Counters summed over all explorations (`max_depth` is the maximum).
    pub stats: ExploreStats,
    /// The first failing scenario, with its counterexample.
    pub failure: Option<(Scenario, Counterexample)>,
}

impl SweepOutcome {
    /// True when every scenario verified clean.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Explore every tree in `trees` under the given budgets, stopping at the
/// first violation. `on_tree` is called after each tree with its index and the
/// per-tree report (progress reporting for the CLI; pass `|_, _| {}` to skip).
pub fn sweep(
    trees: Vec<RootedTree>,
    objects: usize,
    max_requests: usize,
    crash_episodes: usize,
    abandons: usize,
    config: &ExploreConfig,
    mut on_tree: impl FnMut(usize, &CheckReport),
) -> SweepOutcome {
    let mut outcome = SweepOutcome {
        scenarios: 0,
        stats: ExploreStats::default(),
        failure: None,
    };
    for (i, tree) in trees.into_iter().enumerate() {
        let scenario = Scenario {
            tree,
            objects,
            max_requests,
            crash_episodes,
            abandons,
        };
        let report = explore(&scenario, config);
        outcome.scenarios += 1;
        outcome.stats.states += report.stats.states;
        outcome.stats.deduped += report.stats.deduped;
        outcome.stats.sleep_pruned += report.stats.sleep_pruned;
        outcome.stats.transitions += report.stats.transitions;
        outcome.stats.quiescent += report.stats.quiescent;
        outcome.stats.max_depth = outcome.stats.max_depth.max(report.stats.max_depth);
        outcome.stats.capped |= report.stats.capped;
        on_tree(i, &report);
        if let Some(cx) = report.counterexample {
            outcome.failure = Some((scenario, cx));
            break;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labelled_tree_counts_follow_cayley() {
        assert_eq!(enumerate_trees(1).len(), 1);
        assert_eq!(enumerate_trees(2).len(), 1);
        assert_eq!(enumerate_trees(3).len(), 3);
        assert_eq!(enumerate_trees(4).len(), 16);
        assert_eq!(enumerate_trees(5).len(), 125);
        for t in enumerate_trees(4) {
            assert_eq!(t.node_count(), 4);
            assert_eq!(t.root(), 0);
        }
    }

    #[test]
    fn rooted_isomorphism_classes_match_oeis_a000081() {
        assert_eq!(representative_trees(1).len(), 1);
        assert_eq!(representative_trees(2).len(), 1);
        assert_eq!(representative_trees(3).len(), 2);
        assert_eq!(representative_trees(4).len(), 4);
        assert_eq!(representative_trees(5).len(), 9);
    }

    #[test]
    fn sweep_over_three_node_trees_is_clean() {
        let outcome = sweep(
            enumerate_trees(3),
            1,
            2,
            0,
            0,
            &ExploreConfig::default(),
            |_, _| {},
        );
        assert!(outcome.ok(), "{:?}", outcome.failure);
        assert_eq!(outcome.scenarios, 3);
        assert!(outcome.stats.quiescent >= 3);
    }
}
