//! The explicit system state the checker explores.
//!
//! A [`SysState`] is everything the distributed system *is* at one instant:
//! one [`ArrowCore`] automaton per node, one FIFO frame queue per directed
//! channel, the tracker rows for every request issued so far, the crash-episode
//! status, and the per-`(object, epoch)` succession records the quiescence
//! invariants read. Everything that can influence future behaviour is part of
//! the state and feeds the canonical hash; everything else is deliberately
//! excluded so equivalent histories dedup.

use arrow_core::live::ArrowCore;
use arrow_core::prelude::{ObjectId, RequestId};
use netgraph::{NodeId, RootedTree};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Which lane of the transport a frame travels on.
///
/// The real tiers keep `queue()` traffic on spanning-tree links and token
/// grants on lazily dialed direct channels (simulator: `send_direct`; sockets:
/// lazy token connections). Each lane is its own FIFO, so modelling them as
/// separate channels explores a *superset* of the interleavings any tier can
/// produce (a tier that multiplexes both lanes onto one connection only ever
/// realises a subset of the orderings explored here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChannelClass {
    /// Spanning-tree edge: carries `queue()` frames between tree neighbours.
    Tree,
    /// Direct point-to-point channel: carries token grants to the requester.
    Direct,
}

/// A directed FIFO channel `(from, to, class)`.
pub type ChannelId = (NodeId, NodeId, ChannelClass);

/// A protocol frame in flight on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Frame {
    /// The arrow `queue()` message for `req` (issued at `origin`).
    Queue {
        /// Object whose queue the request joins.
        obj: ObjectId,
        /// The request being queued.
        req: RequestId,
        /// Node that issued the request.
        origin: NodeId,
        /// Sender's recovery epoch.
        epoch: u64,
    },
    /// `obj`'s exclusion token, granting `req`.
    Token {
        /// Object whose token moves.
        obj: ObjectId,
        /// The request being granted.
        req: RequestId,
        /// Sender's recovery epoch.
        epoch: u64,
    },
}

impl Frame {
    /// The epoch stamped on the frame.
    pub fn epoch(&self) -> u64 {
        match *self {
            Frame::Queue { epoch, .. } | Frame::Token { epoch, .. } => epoch,
        }
    }

    /// The object the frame concerns.
    pub fn obj(&self) -> ObjectId {
        match *self {
            Frame::Queue { obj, .. } | Frame::Token { obj, .. } => obj,
        }
    }
}

/// Tracker row for one issued request — the model's stand-in for the
/// application-side waiter the real runtimes keep in their waiting maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqSlot {
    /// The request id the core assigned at issue.
    pub req: RequestId,
    /// Node the request was issued at.
    pub node: NodeId,
    /// Object requested.
    pub obj: ObjectId,
    /// Times the token was granted to a *live* waiter (must end at exactly 1).
    pub granted: u32,
    /// The waiter released the token (or the crash that killed it did).
    pub released: bool,
    /// The waiter vanished: the issuing node crashed while the request was
    /// still pending, so no application thread is left to receive a grant.
    /// A token that arrives for a lost request is an *orphaned grant* — the
    /// runtime must self-release it (the PR 6 bug class).
    pub lost: bool,
    /// Epoch of the most recent grant (for per-epoch custody attribution).
    pub grant_epoch: u64,
    /// Epochs in which a `Queued` event fired for this request, sorted.
    /// Definition 3.2 requires exactly one per epoch the request participates in.
    pub queued_epochs: Vec<u64>,
}

/// Crash-episode bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrashState {
    /// Episodes consumed so far (a crash starts one).
    pub episodes_used: u32,
    /// Fault events applied so far. The live runtimes broadcast one detection
    /// signal per fault *event* — crash AND restart each bump the epoch — so
    /// the detection target epoch equals this count, and the post-restart bump
    /// is what re-issues requests whose mid-outage retry was dropped at the
    /// downed node.
    pub fault_events: u32,
    /// The node currently down, if any.
    pub down: Option<NodeId>,
    /// Waiters abandoned so far (a pending acquire timing out and dropping its
    /// reply channel — no fault event, no epoch bump, just a vanished waiter).
    pub abandoned: u32,
}

/// One reachable state of the whole system.
#[derive(Debug, Clone)]
pub struct SysState {
    /// Per-node protocol automata, indexed by node id.
    pub cores: Vec<ArrowCore>,
    /// Non-empty FIFO channels only (an empty channel is removed, so states
    /// that differ only by once-used-now-empty queues hash identically).
    pub channels: BTreeMap<ChannelId, VecDeque<Frame>>,
    /// Issued requests, in issue order.
    pub slots: Vec<ReqSlot>,
    /// Crash-episode status.
    pub crash: CrashState,
    /// Succession records `(obj, epoch, pred, succ)` observed so far. Part of
    /// the state because the terminal chain invariants read them; two runs
    /// with different succession structure are genuinely different outcomes.
    pub queued_links: BTreeSet<(ObjectId, u64, RequestId, RequestId)>,
}

impl SysState {
    /// The initial state: every core in the initial tree orientation, all
    /// channels empty, nothing issued, no faults.
    pub fn initial(tree: &RootedTree, objects: usize) -> Self {
        SysState {
            cores: (0..tree.node_count())
                .map(|v| ArrowCore::for_tree(v, tree, objects))
                .collect(),
            channels: BTreeMap::new(),
            slots: Vec::new(),
            crash: CrashState {
                episodes_used: 0,
                fault_events: 0,
                down: None,
                abandoned: 0,
            },
            queued_links: BTreeSet::new(),
        }
    }

    /// True if the node's event loop is running (not currently crashed).
    pub fn alive(&self, v: NodeId) -> bool {
        self.crash.down != Some(v)
    }

    /// The epoch the whole system is converging to: one bump per fault event
    /// applied — both the crash and the restart of an episode count, mirroring
    /// the runtimes' per-event detection broadcast (0 in fault-free
    /// exploration).
    pub fn target_epoch(&self) -> u64 {
        self.crash.fault_events as u64
    }

    /// The tracker row for a request, if issued.
    pub fn slot(&self, req: RequestId) -> Option<&ReqSlot> {
        self.slots.iter().find(|s| s.req == req)
    }

    /// Mutable tracker row for a request.
    pub fn slot_mut(&mut self, req: RequestId) -> Option<&mut ReqSlot> {
        self.slots.iter_mut().find(|s| s.req == req)
    }

    /// Push a frame onto a channel (creating the queue on first use).
    pub fn push_frame(&mut self, channel: ChannelId, frame: Frame) {
        self.channels.entry(channel).or_default().push_back(frame);
    }

    /// Pop the head-of-line frame of a channel, removing the queue when it
    /// empties (keeps the channel map canonical for hashing).
    pub fn pop_frame(&mut self, channel: ChannelId) -> Option<Frame> {
        let queue = self.channels.get_mut(&channel)?;
        let frame = queue.pop_front();
        if queue.is_empty() {
            self.channels.remove(&channel);
        }
        frame
    }

    /// Drop every in-flight frame on channels incident to `v`, in both
    /// directions and on both lanes (what a crash does to a node's sockets).
    pub fn sever_node(&mut self, v: NodeId) {
        self.channels
            .retain(|&(from, to, _), _| from != v && to != v);
    }

    /// Canonical 128-bit state hash.
    ///
    /// Two independently seeded 64-bit SipHash streams are combined, which
    /// makes an accidental collision between two of even 10^9 distinct states
    /// (~2^-68) negligible — important because a collision would silently
    /// merge two different states and could mask a violation. Slot rows are
    /// folded in request-id order so that interleavings that issued the same
    /// requests in a different order (the ids are node-interleaved and
    /// order-independent) hash identically.
    pub fn hash128(&self) -> u128 {
        let mut lo = DefaultHasher::new();
        let mut hi = DefaultHasher::new();
        hi.write_u64(0x9E37_79B9_7F4A_7C15);
        for hasher in [&mut lo, &mut hi] {
            for core in &self.cores {
                core.hash_into(hasher);
            }
            for (channel, queue) in &self.channels {
                channel.hash(hasher);
                queue.hash(hasher);
            }
            let mut order: Vec<usize> = (0..self.slots.len()).collect();
            order.sort_by_key(|&i| self.slots[i].req);
            for i in order {
                let s = &self.slots[i];
                (
                    s.req,
                    s.node,
                    s.obj,
                    s.granted,
                    s.released,
                    s.lost,
                    s.grant_epoch,
                )
                    .hash(hasher);
                s.queued_epochs.hash(hasher);
            }
            self.crash.hash(hasher);
            self.queued_links.hash(hasher);
        }
        ((hi.finish() as u128) << 64) | lo.finish() as u128
    }

    /// Total frames in flight (for stats and sanity bounds).
    pub fn frames_in_flight(&self) -> usize {
        self.channels.values().map(|q| q.len()).sum()
    }
}

impl fmt::Display for SysState {
    /// A compact multi-line rendering used in counterexample reports.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "crash: used={} down={:?} abandoned={}  target_epoch={}",
            self.crash.episodes_used,
            self.crash.down,
            self.crash.abandoned,
            self.target_epoch()
        )?;
        for core in &self.cores {
            let snap = core.snapshot();
            writeln!(
                f,
                "node {}: epoch={} links={:?} tokens={:?}",
                snap.node, snap.epoch, snap.objects, snap.tokens
            )?;
        }
        for ((from, to, class), queue) in &self.channels {
            writeln!(f, "channel {from}->{to} {class:?}: {queue:?}")?;
        }
        for s in &self.slots {
            writeln!(
                f,
                "req {} @node {} {}: granted={} released={} lost={} queued@{:?}",
                s.req, s.node, s.obj, s.granted, s.released, s.lost, s.queued_epochs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    fn tree(n: usize) -> RootedTree {
        RootedTree::from_tree_graph(&generators::path(n), 0)
    }

    #[test]
    fn initial_states_hash_equal_and_differ_from_mutated() {
        let t = tree(4);
        let a = SysState::initial(&t, 2);
        let b = SysState::initial(&t, 2);
        assert_eq!(a.hash128(), b.hash128());
        let mut c = SysState::initial(&t, 2);
        c.push_frame(
            (0, 1, ChannelClass::Tree),
            Frame::Queue {
                obj: ObjectId(0),
                req: RequestId(5),
                origin: 0,
                epoch: 0,
            },
        );
        assert_ne!(a.hash128(), c.hash128());
    }

    #[test]
    fn popping_the_last_frame_restores_the_canonical_hash() {
        let t = tree(3);
        let empty = SysState::initial(&t, 1);
        let mut s = SysState::initial(&t, 1);
        let ch = (1, 0, ChannelClass::Direct);
        let frame = Frame::Token {
            obj: ObjectId(0),
            req: RequestId(2),
            epoch: 0,
        };
        s.push_frame(ch, frame);
        assert_ne!(s.hash128(), empty.hash128());
        assert_eq!(s.pop_frame(ch), Some(frame));
        // The emptied queue is removed, so the state is *identical* to one that
        // never used the channel.
        assert_eq!(s.hash128(), empty.hash128());
        assert!(s.pop_frame(ch).is_none());
    }

    #[test]
    fn slot_order_does_not_change_the_hash() {
        let t = tree(3);
        let slot = |req: u64, node: NodeId| ReqSlot {
            req: RequestId(req),
            node,
            obj: ObjectId(0),
            granted: 0,
            released: false,
            lost: false,
            grant_epoch: 0,
            queued_epochs: Vec::new(),
        };
        let mut a = SysState::initial(&t, 1);
        a.slots = vec![slot(1, 0), slot(2, 1)];
        let mut b = SysState::initial(&t, 1);
        b.slots = vec![slot(2, 1), slot(1, 0)];
        assert_eq!(a.hash128(), b.hash128());
    }

    #[test]
    fn sever_node_drops_both_directions() {
        let t = tree(3);
        let mut s = SysState::initial(&t, 1);
        let f = Frame::Queue {
            obj: ObjectId(0),
            req: RequestId(4),
            origin: 2,
            epoch: 0,
        };
        s.push_frame((2, 1, ChannelClass::Tree), f);
        s.push_frame((0, 1, ChannelClass::Tree), f);
        s.push_frame((0, 2, ChannelClass::Direct), f);
        s.sever_node(1);
        assert_eq!(s.frames_in_flight(), 1);
        assert!(s.channels.contains_key(&(0, 2, ChannelClass::Direct)));
    }
}
