//! Counterexample export: turn a violating model trace into a conformance
//! replay file in the existing `arrow-conformance-replay v1` grammar.
//!
//! The model's scenario and the conformance harness's case format do not line
//! up one-to-one — replay cases are time-driven (requests fire at simulated
//! instants) while the model is interleaving-driven — so the export maps each
//! model decision onto the nearest replay primitive:
//!
//! * the spanning tree becomes a `random-tree` case whose derivation seed is
//!   found by searching for one whose Prüfer decode reproduces the exact
//!   parent array (uniform over labelled trees, so a seed always exists and is
//!   found quickly at model sizes);
//! * each `issue` step becomes a `req` line at `(step + 1)` time units, so the
//!   replayed schedule preserves the trace's issue order;
//! * each `crash` step becomes a `fault ... crash` line (same tick mapping),
//!   and a restart tail is appended when the trace ends mid-episode so the
//!   schedule stays *terminally clean* (an `arrow_core` fault-schedule
//!   validity rule);
//! * `abandon` steps (a waiter timing out) have no replay primitive — the
//!   grammar cannot force a deterministic timeout — so they appear only in the
//!   comment trace, not in the replayed schedule;
//! * the full transition sequence is embedded as `#` comment lines, which the
//!   v1 parser skips — the file both replays through the live tiers and
//!   documents the exact interleaving the checker found.

use crate::explore::Counterexample;
use crate::transition::Transition;
use crate::Scenario;
use arrow_conformance::case::{CaseSpec, GraphKind, ReplayCase, WorkloadKind};
use arrow_core::prelude::{FaultAction, FaultEvent, SyncMode};
use netgraph::spanning::SpanningTreeKind;
use netgraph::RootedTree;

/// How many `random-tree` seeds to try before giving up on an exact
/// parent-array match. At model sizes (n ≤ 6) there are at most `n^(n-2) ≤
/// 1296` labelled trees and the generator samples them uniformly, so a miss at
/// this bound is essentially impossible.
const SEED_SEARCH_BOUND: u64 = 200_000;

/// Find a seed for which `generators::random_tree(n, seed)` rooted at 0
/// reproduces `tree`'s exact parent array.
pub fn find_random_tree_seed(tree: &RootedTree) -> Option<u64> {
    let n = tree.node_count();
    if n <= 2 {
        return Some(0); // Trees this small are seed-independent.
    }
    let target: Vec<Option<usize>> = (0..n).map(|v| tree.parent(v)).collect();
    (0..SEED_SEARCH_BOUND).find(|&seed| {
        let g = netgraph::generators::random_tree(n, seed);
        if !g.is_tree() {
            return false;
        }
        let candidate = RootedTree::from_tree_graph(&g, tree.root());
        (0..n).all(|v| candidate.parent(v) == target[v])
    })
}

/// Render `counterexample` (found under `scenario`) as a replay file in the
/// conformance v1 grammar, with the transition trace embedded as comments.
///
/// Returns `None` only if no `random-tree` seed reproduces the scenario's tree
/// within the search bound (not expected at model sizes).
pub fn export_replay(scenario: &Scenario, counterexample: &Counterexample) -> Option<String> {
    let seed = find_random_tree_seed(&scenario.tree)?;
    let n = scenario.tree.node_count();

    // One time unit per trace step keeps the replayed issue order identical to
    // the trace's and leaves room between events for the tiers' delivery.
    let mut requests = Vec::new();
    let mut faults = Vec::new();
    let mut last_crashed: Option<usize> = None;
    for (step, t) in counterexample.trace.iter().enumerate() {
        let tick = (step + 1) as u64;
        match *t {
            Transition::Issue { node, obj } => {
                requests.push((node, tick * desim::SUBTICKS_PER_UNIT, obj.0));
            }
            Transition::Crash { node } => {
                faults.push(FaultEvent {
                    at: tick,
                    action: FaultAction::CrashNode(node),
                });
                last_crashed = Some(node);
            }
            Transition::Restart { node } => {
                faults.push(FaultEvent {
                    at: tick,
                    action: FaultAction::RestartNode(node),
                });
                last_crashed = None;
            }
            _ => {}
        }
    }
    // Terminally-clean tail: a trace that violates mid-episode still has the
    // victim down; the replay schedule must heal it or fail validation.
    if let Some(v) = last_crashed {
        faults.push(FaultEvent {
            at: counterexample.trace.len() as u64 + 2,
            action: FaultAction::RestartNode(v),
        });
    }

    let case = ReplayCase {
        spec: CaseSpec {
            seed,
            nodes: n,
            graph: GraphKind::RandomTree,
            tree: SpanningTreeKind::ShortestPath,
            objects: scenario.objects.max(1),
            requests: requests.len(),
            workload: WorkloadKind::UniformRandom,
            sync: SyncMode::Synchronous,
            async_lo: 0.0,
        },
        requests,
        faults,
    };

    // The v1 grammar demands the magic header on line 1; comments are only
    // skipped after it, so splice our annotations in right behind it.
    let body = case.to_replay_text();
    let (header, rest) = body.split_once('\n').expect("replay text is non-empty");
    let mut out = String::new();
    out.push_str(header);
    out.push('\n');
    out.push_str("# Counterexample exported by arrow-model (modelcheck).\n");
    out.push_str(&format!(
        "# Scenario: {n} nodes, {} object(s), <= {} request(s), <= {} crash episode(s), \
         <= {} abandon(s).\n",
        scenario.objects, scenario.max_requests, scenario.crash_episodes, scenario.abandons
    ));
    out.push_str("# Violated invariants:\n");
    for v in &counterexample.violations {
        out.push_str(&format!("#   {v}\n"));
    }
    out.push_str("# Transition trace (model interleaving; the replay below maps\n");
    out.push_str("# its issue/crash/restart steps onto the case timeline):\n");
    for (i, t) in counterexample.trace.iter().enumerate() {
        out.push_str(&format!("#   step {i:3}: {t}\n"));
    }
    out.push_str(rest);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::{ModelInvariant, ModelViolation};
    use arrow_core::prelude::ObjectId;
    use netgraph::generators;

    fn scenario(n: usize) -> Scenario {
        Scenario {
            tree: RootedTree::from_tree_graph(&generators::path(n), 0),
            objects: 1,
            max_requests: 2,
            crash_episodes: 1,
            abandons: 0,
        }
    }

    #[test]
    fn seed_search_reproduces_exact_parent_arrays() {
        for (name, graph) in [
            ("path", generators::path(5)),
            ("star", generators::star(5)),
            ("binary", generators::balanced_binary_tree(5)),
        ] {
            let tree = RootedTree::from_tree_graph(&graph, 0);
            let seed = find_random_tree_seed(&tree).unwrap_or_else(|| panic!("no seed for {name}"));
            let rebuilt = RootedTree::from_tree_graph(&generators::random_tree(5, seed), 0);
            for v in 0..5 {
                assert_eq!(rebuilt.parent(v), tree.parent(v), "{name} node {v}");
            }
        }
    }

    #[test]
    fn exported_replay_parses_and_validates() {
        let sc = scenario(4);
        let cx = Counterexample {
            trace: vec![
                Transition::Issue {
                    node: 3,
                    obj: ObjectId(0),
                },
                Transition::Crash { node: 2 },
                Transition::Issue {
                    node: 1,
                    obj: ObjectId(0),
                },
            ],
            violations: vec![ModelViolation::new(
                ModelInvariant::Deadlock,
                "synthetic test violation",
            )],
        };
        let text = export_replay(&sc, &cx).expect("export must succeed");
        assert!(text.contains("# Counterexample"));
        assert!(text.contains("deadlock"));
        let case = ReplayCase::from_replay_text(&text).expect("grammar-valid");
        assert_eq!(case.requests.len(), 2);
        assert_eq!(case.spec.graph, GraphKind::RandomTree);
        // The unhealed crash got a restart tail; the schedule validates against
        // the case's own tree.
        assert_eq!(case.faults.len(), 2);
        let instance = case.spec.build_instance();
        case.fault_schedule().validate(instance.tree()).unwrap();
        // And the case's tree is byte-identical to the model's.
        for v in 0..4 {
            assert_eq!(instance.tree().parent(v), sc.tree.parent(v));
        }
    }

    #[test]
    fn fault_free_trace_exports_without_fault_lines() {
        let sc = scenario(3);
        let cx = Counterexample {
            trace: vec![Transition::Issue {
                node: 2,
                obj: ObjectId(0),
            }],
            violations: vec![ModelViolation::new(ModelInvariant::SinkCount, "synthetic")],
        };
        let text = export_replay(&sc, &cx).unwrap();
        let case = ReplayCase::from_replay_text(&text).unwrap();
        assert!(case.faults.is_empty());
        assert_eq!(case.requests, vec![(2, desim::SUBTICKS_PER_UNIT, 0)]);
    }
}
