//! Partial-order reduction: a conservative independence relation and the
//! sleep-set bookkeeping built on it.
//!
//! Two transitions are *independent* in a state when both are enabled, neither
//! disables the other, and executing them in either order reaches the same
//! state. Sleep sets (Godefroid) use independence to skip interleavings that
//! only permute independent steps: unlike ample/persistent-set reductions,
//! sleep sets still visit **every reachable state**, so all state- and
//! transition-level invariant checks retain full coverage — only redundant
//! *paths* are pruned.
//!
//! The relation here is deliberately conservative: fault-model transitions
//! (crash / restart / detection signal) are declared dependent on everything,
//! and two deliveries commute only when their channel and node footprints are
//! completely disjoint. Soundness never rests on the reduction — `--no-reduce`
//! runs the same exploration without it — but the pruning is what makes the
//! 5-node sweeps tractable.

use crate::state::SysState;
use crate::transition::Transition;
use crate::Scenario;

/// Conservative state-dependent independence check.
///
/// Returns `true` only when `a` and `b` provably commute from `state` (both
/// assumed enabled there). Any pair involving the fault model, or sharing a
/// node or channel footprint, is declared dependent.
pub fn independent(a: Transition, b: Transition, state: &SysState, scenario: &Scenario) -> bool {
    use Transition::*;
    // The fault model rewrites global structure (severed channels, lost
    // waiters, epoch targets): never commuted with anything. Waiter
    // abandonment is rare enough in practice (a per-scenario budget of 0 or 1)
    // that it is lumped in conservatively rather than given its own relation.
    if matches!(
        a,
        Crash { .. } | Restart { .. } | EpochSignal { .. } | Abandon { .. }
    ) || matches!(
        b,
        Crash { .. } | Restart { .. } | EpochSignal { .. } | Abandon { .. }
    ) {
        return false;
    }
    match (a, b) {
        (Issue { node: n1, .. }, Issue { node: n2, .. }) => {
            // Different issuers draw from per-node id sequences, so the steps
            // commute — unless only one issue slot is left in the budget, in
            // which case each disables the other.
            n1 != n2 && state.slots.len() + 2 <= scenario.max_requests
        }
        (Issue { node, .. }, Deliver { from, to, .. })
        | (Deliver { from, to, .. }, Issue { node, .. }) => node != from && node != to,
        (Issue { node: n1, .. }, Release { req }) | (Release { req }, Issue { node: n1, .. }) => {
            state.slot(req).map(|s| s.node) != Some(n1)
        }
        (Release { req: r1 }, Release { req: r2 }) => {
            let n1 = state.slot(r1).map(|s| s.node);
            let n2 = state.slot(r2).map(|s| s.node);
            n1.is_some() && n2.is_some() && n1 != n2
        }
        (Release { req }, Deliver { from, to, .. })
        | (Deliver { from, to, .. }, Release { req }) => {
            let node = state.slot(req).map(|s| s.node);
            node.is_some() && node != Some(from) && node != Some(to)
        }
        (
            Deliver {
                from: f1,
                to: t1,
                class: c1,
            },
            Deliver {
                from: f2,
                to: t2,
                class: c2,
            },
        ) => {
            // Disjoint channels AND disjoint node footprints: neither delivery
            // can touch the other's queue or the other's receiving core.
            (f1, t1, c1) != (f2, t2, c2) && t1 != t2 && t1 != f2 && t2 != f1
        }
        _ => false,
    }
}

/// The sleep set a child inherits when the parent explores `chosen` while
/// `parent_sleep ∪ already_explored` were asleep/behind it: every sleeping
/// transition that is independent of `chosen` stays asleep in the child.
pub fn child_sleep_set(
    parent_sleep: &[Transition],
    already_explored: &[Transition],
    chosen: Transition,
    state: &SysState,
    scenario: &Scenario,
) -> Vec<Transition> {
    let mut child: Vec<Transition> = Vec::new();
    for &t in parent_sleep.iter().chain(already_explored.iter()) {
        if t != chosen && independent(t, chosen, state, scenario) && !child.contains(&t) {
            child.push(t);
        }
    }
    child.sort_unstable();
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ChannelClass;
    use crate::transition::{apply, BugSwitch};
    use arrow_core::prelude::ObjectId;
    use netgraph::{generators, RootedTree};

    fn scenario(n: usize) -> Scenario {
        Scenario {
            tree: RootedTree::from_tree_graph(&generators::star(n), 0),
            objects: 1,
            max_requests: 4,
            crash_episodes: 1,
            abandons: 0,
        }
    }

    #[test]
    fn fault_transitions_are_dependent_on_everything() {
        let sc = scenario(3);
        let s = SysState::initial(&sc.tree, 1);
        let crash = Transition::Crash { node: 1 };
        let issue = Transition::Issue {
            node: 2,
            obj: ObjectId(0),
        };
        assert!(!independent(crash, issue, &s, &sc));
        assert!(!independent(issue, crash, &s, &sc));
        assert!(!independent(
            Transition::EpochSignal { node: 2 },
            issue,
            &s,
            &sc
        ));
    }

    #[test]
    fn issues_at_distinct_nodes_commute_to_the_same_state() {
        let sc = scenario(3);
        let s = SysState::initial(&sc.tree, 1);
        let a = Transition::Issue {
            node: 1,
            obj: ObjectId(0),
        };
        let b = Transition::Issue {
            node: 2,
            obj: ObjectId(0),
        };
        assert!(independent(a, b, &s, &sc));
        let (sab, _) = apply(
            &apply(&s, a, &sc, BugSwitch::None).0,
            b,
            &sc,
            BugSwitch::None,
        );
        let (sba, _) = apply(
            &apply(&s, b, &sc, BugSwitch::None).0,
            a,
            &sc,
            BugSwitch::None,
        );
        assert_eq!(sab.hash128(), sba.hash128(), "orders must converge");
    }

    #[test]
    fn issues_fighting_over_the_last_budget_slot_are_dependent() {
        let mut sc = scenario(3);
        sc.max_requests = 1;
        let s = SysState::initial(&sc.tree, 1);
        let a = Transition::Issue {
            node: 1,
            obj: ObjectId(0),
        };
        let b = Transition::Issue {
            node: 2,
            obj: ObjectId(0),
        };
        assert!(!independent(a, b, &s, &sc), "one disables the other");
    }

    #[test]
    fn deliveries_with_shared_endpoints_are_dependent() {
        let sc = scenario(4);
        let s = SysState::initial(&sc.tree, 1);
        let d = |from, to| Transition::Deliver {
            from,
            to,
            class: ChannelClass::Tree,
        };
        assert!(!independent(d(1, 0), d(2, 0), &s, &sc), "same receiver");
        assert!(!independent(d(1, 0), d(0, 2), &s, &sc), "t1 == f2");
        // Star graphs give no fully disjoint pair; a path does.
        let sc2 = Scenario {
            tree: RootedTree::from_tree_graph(&generators::path(4), 0),
            ..scenario(4)
        };
        assert!(independent(d(3, 2), d(1, 0), &s, &sc2));
    }

    #[test]
    fn child_sleep_keeps_only_independent_sleepers() {
        let sc = Scenario {
            tree: RootedTree::from_tree_graph(&generators::path(4), 0),
            objects: 1,
            max_requests: 8,
            crash_episodes: 0,
            abandons: 0,
        };
        let s = SysState::initial(&sc.tree, 1);
        let i = |node| Transition::Issue {
            node,
            obj: ObjectId(0),
        };
        // After exploring issue@1 and issue@2, choosing issue@3 keeps both
        // asleep (all pairwise independent with budget to spare)...
        let sleep = child_sleep_set(&[i(1)], &[i(2)], i(3), &s, &sc);
        assert_eq!(sleep, vec![i(1), i(2)]);
        // ...but choosing a dependent delivery wakes everything sharing a node.
        let d = Transition::Deliver {
            from: 1,
            to: 0,
            class: ChannelClass::Tree,
        };
        let sleep = child_sleep_set(&[i(1), i(3)], &[], d, &s, &sc);
        assert_eq!(sleep, vec![i(3)]);
    }
}
