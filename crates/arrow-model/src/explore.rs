//! The bounded DFS itself: canonical-hash deduplication, sleep-set pruning,
//! invariant checking at every state, quiescence checking at drained states,
//! and counterexample extraction.
//!
//! # Dedup × sleep sets
//!
//! Combining a visited set with sleep sets needs care: reaching an old state
//! with a *smaller* sleep set means more behaviour must be explored from it
//! than last time. The classic rule is applied here — alongside each canonical
//! hash the visited map stores the sleep set the state was explored with; a
//! revisit is skipped only when the stored sleep set is a subset of the new
//! one, and otherwise the state is re-explored with the intersection (and the
//! stored set is lowered to it, so the process converges).

use crate::invariants::{check_quiescent, check_state, ModelViolation};
use crate::reduce::child_sleep_set;
use crate::state::SysState;
use crate::transition::{apply, enabled, BugSwitch, Transition};
use crate::Scenario;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

/// Knobs for one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Deduplicate states by canonical 128-bit hash (`--no-dedup` disables).
    pub dedup: bool,
    /// Sleep-set partial-order reduction (`--no-reduce` disables).
    pub reduce: bool,
    /// Historical-bug injection for regression runs.
    pub bug: BugSwitch,
    /// Hard cap on transitions applied; exploration stops (with
    /// [`ExploreStats::capped`] set) rather than run away. Chiefly a guard for
    /// `--no-dedup` runs, which can cycle through post-crash message loops.
    pub max_transitions: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            dedup: true,
            reduce: true,
            bug: BugSwitch::None,
            max_transitions: 50_000_000,
        }
    }
}

/// Counters describing how the exploration went.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// States entered (re-entries after a sleep-set lowering count again).
    pub states: u64,
    /// Revisits skipped by the canonical-hash visited set.
    pub deduped: u64,
    /// Enabled transitions skipped because they were asleep.
    pub sleep_pruned: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// Drained (quiescent) states encountered.
    pub quiescent: u64,
    /// Deepest DFS path, in transitions.
    pub max_depth: usize,
    /// True if the run stopped at [`ExploreConfig::max_transitions`].
    pub capped: bool,
}

impl fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "states={} transitions={} deduped={} sleep-pruned={} quiescent={} max-depth={}{}",
            self.states,
            self.transitions,
            self.deduped,
            self.sleep_pruned,
            self.quiescent,
            self.max_depth,
            if self.capped { " CAPPED" } else { "" }
        )
    }
}

/// A violating execution: the transition sequence from the initial state and
/// the invariant violations observed at its end.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Transitions from the initial state to the violating state.
    pub trace: Vec<Transition>,
    /// Everything that was violated there (at least one entry).
    pub violations: Vec<ModelViolation>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.trace.iter().enumerate() {
            writeln!(f, "  step {i:3}: {t}")?;
        }
        for v in &self.violations {
            writeln!(f, "  VIOLATION: {v}")?;
        }
        Ok(())
    }
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Exploration counters.
    pub stats: ExploreStats,
    /// The first violating execution found, if any.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    /// True when no invariant was violated anywhere in the explored space.
    pub fn ok(&self) -> bool {
        self.counterexample.is_none()
    }
}

struct Frame {
    state: SysState,
    sleep: Vec<Transition>,
    todo: Vec<Transition>,
    idx: usize,
    explored: Vec<Transition>,
}

fn is_subset(small: &[Transition], big: &[Transition]) -> bool {
    small.iter().all(|t| big.contains(t))
}

fn intersect(a: &[Transition], b: &[Transition]) -> Vec<Transition> {
    let mut out: Vec<Transition> = a.iter().copied().filter(|t| b.contains(t)).collect();
    out.sort_unstable();
    out
}

/// Exhaustively explore `scenario` under `config`, checking every invariant,
/// and return the stats plus the first counterexample (if any).
pub fn explore(scenario: &Scenario, config: &ExploreConfig) -> CheckReport {
    let mut stats = ExploreStats::default();
    let mut visited: HashMap<u128, Vec<Transition>> = HashMap::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut path: Vec<Transition> = Vec::new();

    let root = SysState::initial(&scenario.tree, scenario.objects);
    let violations = check_state(&root, scenario.objects);
    if !violations.is_empty() {
        return CheckReport {
            stats,
            counterexample: Some(Counterexample {
                trace: Vec::new(),
                violations,
            }),
        };
    }
    if config.dedup {
        visited.insert(root.hash128(), Vec::new());
    }
    match enter(root, Vec::new(), scenario, &mut stats, 0) {
        Ok(frame) => stack.push(frame),
        Err(violations) => {
            return CheckReport {
                stats,
                counterexample: Some(Counterexample {
                    trace: Vec::new(),
                    violations,
                }),
            }
        }
    }

    while let Some(top) = stack.len().checked_sub(1) {
        if stack[top].idx >= stack[top].todo.len() {
            stack.pop();
            path.pop();
            continue;
        }
        let t = stack[top].todo[stack[top].idx];
        stack[top].idx += 1;

        if stats.transitions >= config.max_transitions {
            stats.capped = true;
            return CheckReport {
                stats,
                counterexample: None,
            };
        }
        stats.transitions += 1;

        let (next, mut violations) = apply(&stack[top].state, t, scenario, config.bug);
        violations.extend(check_state(&next, scenario.objects));
        if !violations.is_empty() {
            let mut trace = path.clone();
            trace.push(t);
            return CheckReport {
                stats,
                counterexample: Some(Counterexample { trace, violations }),
            };
        }

        let mut child_sleep = if config.reduce {
            child_sleep_set(
                &stack[top].sleep,
                &stack[top].explored,
                t,
                &stack[top].state,
                scenario,
            )
        } else {
            Vec::new()
        };
        stack[top].explored.push(t);

        if config.dedup {
            match visited.entry(next.hash128()) {
                Entry::Vacant(e) => {
                    e.insert(child_sleep.clone());
                }
                Entry::Occupied(mut e) => {
                    if is_subset(e.get(), &child_sleep) {
                        // Everything the new visit would skip was already
                        // covered (or also skipped, soundly) last time.
                        stats.deduped += 1;
                        continue;
                    }
                    // Smaller sleep set: more behaviour to cover. Re-explore
                    // with the intersection and remember the lowered set.
                    let lowered = intersect(e.get(), &child_sleep);
                    e.insert(lowered.clone());
                    child_sleep = lowered;
                }
            }
        }

        match enter(next, child_sleep, scenario, &mut stats, path.len() + 1) {
            Ok(frame) => {
                stack.push(frame);
                path.push(t);
            }
            Err(violations) => {
                let mut trace = path.clone();
                trace.push(t);
                return CheckReport {
                    stats,
                    counterexample: Some(Counterexample { trace, violations }),
                };
            }
        }
    }

    CheckReport {
        stats,
        counterexample: None,
    }
}

/// Book a newly reached state in: bump counters, run the quiescence checks if
/// it is drained, and build its DFS frame (enabled transitions minus sleepers).
fn enter(
    state: SysState,
    sleep: Vec<Transition>,
    scenario: &Scenario,
    stats: &mut ExploreStats,
    depth: usize,
) -> Result<Frame, Vec<ModelViolation>> {
    stats.states += 1;
    stats.max_depth = stats.max_depth.max(depth);
    let all = enabled(&state, scenario);
    if !all.iter().any(Transition::is_draining) {
        // Nothing left that moves the protocol: the quiescence contract must
        // hold here, whatever issue/crash budget remains unspent.
        stats.quiescent += 1;
        let violations = check_quiescent(&state, scenario.objects);
        if !violations.is_empty() {
            return Err(violations);
        }
    }
    let todo: Vec<Transition> = all
        .into_iter()
        .filter(|t| {
            let asleep = sleep.contains(t);
            if asleep {
                stats.sleep_pruned += 1;
            }
            !asleep
        })
        .collect();
    Ok(Frame {
        state,
        sleep,
        todo,
        idx: 0,
        explored: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{generators, RootedTree};

    fn scenario(n: usize, objects: usize, requests: usize, crashes: usize) -> Scenario {
        Scenario {
            tree: RootedTree::from_tree_graph(&generators::path(n), 0),
            objects,
            max_requests: requests,
            crash_episodes: crashes,
            abandons: 0,
        }
    }

    #[test]
    fn tiny_fault_free_scenario_is_clean() {
        let report = explore(&scenario(2, 1, 1, 0), &ExploreConfig::default());
        assert!(report.ok(), "{:?}", report.counterexample);
        assert!(report.stats.quiescent >= 1);
        assert!(report.stats.states > 1);
        assert!(!report.stats.capped);
    }

    #[test]
    fn reduction_and_dedup_shrink_the_search_without_changing_the_verdict() {
        let sc = scenario(3, 1, 2, 0);
        let full = explore(&sc, &ExploreConfig::default());
        let naive = explore(
            &sc,
            &ExploreConfig {
                dedup: false,
                reduce: false,
                ..ExploreConfig::default()
            },
        );
        assert!(full.ok() && naive.ok());
        assert!(!naive.stats.capped, "naive must terminate fault-free");
        assert!(
            full.stats.transitions < naive.stats.transitions,
            "pruning must shrink the search: {} vs {}",
            full.stats.transitions,
            naive.stats.transitions
        );
        assert!(full.stats.deduped + full.stats.sleep_pruned > 0);
    }

    #[test]
    fn transition_cap_stops_the_run() {
        let report = explore(
            &scenario(4, 2, 4, 1),
            &ExploreConfig {
                max_transitions: 10,
                ..ExploreConfig::default()
            },
        );
        assert!(report.stats.capped);
        assert!(report.stats.transitions <= 10);
    }

    #[test]
    fn crash_scenarios_explore_clean() {
        let report = explore(&scenario(3, 1, 2, 1), &ExploreConfig::default());
        assert!(report.ok(), "{:?}", report.counterexample);
        assert!(report.stats.quiescent >= 1);
    }
}
