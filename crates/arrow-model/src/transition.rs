//! The transition relation: what the system can do next, and how doing it
//! changes the state.
//!
//! Each [`Transition`] is one atomic step of one component — exactly the
//! granularity at which the real tiers interleave (a node's event loop handles
//! one input, emits its [`CoreAction`]s, and the transport carries them). The
//! checker enumerates every enabled transition in every reachable state, so all
//! interleavings the transports could produce are covered, plus some they
//! cannot (separate token/queue lanes; see
//! [`crate::state::ChannelClass`]).
//!
//! Historical-bug injection lives here too: a [`BugSwitch`] hand-mutates one
//! transition rule, reverting a fixed bug so regression tests can confirm the
//! checker finds the violation the fix prevents.

use crate::invariants::{ModelInvariant, ModelViolation};
use crate::state::{ChannelClass, Frame, ReqSlot, SysState};
use crate::Scenario;
use arrow_core::live::CoreAction;
use arrow_core::prelude::{ObjectId, RequestId};
use netgraph::NodeId;
use std::collections::VecDeque;
use std::fmt;

/// Re-introduce a fixed historical bug by mutating one transition rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BugSwitch {
    /// The protocol as shipped (all fixes in place).
    #[default]
    None,
    /// PR 6's orphaned-grant token wedge: a token granted to a request whose
    /// waiter vanished (a timed-out acquire dropped its reply channel, or the
    /// issuing node crashed while it was pending) is *not* self-released by
    /// the runtime — the token wedges at that node forever and every request
    /// queued behind it starves. The crash flavour is eventually masked by the
    /// detection-driven epoch bump (which discards granted tokens and
    /// regenerates at the root); the timeout flavour ([`Transition::Abandon`])
    /// bumps no epoch, so only the self-release fix can keep the token moving.
    OrphanedGrantWedge,
    /// PR 5's stale-frame class: the link layer forgets epoch hygiene and
    /// delivers stale-epoch frames as if they were current (the receiving core
    /// never gets the chance to reject the ghost), so a pre-recovery token can
    /// grant a request in the recovered epoch alongside the regenerated token.
    StaleFrameAccept,
}

/// One atomic step of the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Transition {
    /// The application at `node` issues a request for `obj`.
    Issue {
        /// Issuing node.
        node: NodeId,
        /// Requested object.
        obj: ObjectId,
    },
    /// Deliver the head-of-line frame of channel `(from, to, class)`.
    Deliver {
        /// Sending side of the channel.
        from: NodeId,
        /// Receiving side of the channel.
        to: NodeId,
        /// Which transport lane.
        class: ChannelClass,
    },
    /// The waiter holding the token for `req` releases it.
    Release {
        /// The granted request being released.
        req: RequestId,
    },
    /// The waiter for the still-pending `req` gives up: its acquire times out
    /// and the reply channel is dropped. The protocol state is untouched — the
    /// request stays queued and the token will still be granted to it — but
    /// nobody is left to receive (or release) that grant.
    Abandon {
        /// The pending request whose waiter vanishes.
        req: RequestId,
    },
    /// Crash `node`: volatile state lost, incident frames dropped, waiters die.
    Crash {
        /// The victim (never the tree root).
        node: NodeId,
    },
    /// Restart the crashed node with freshly reset protocol state.
    Restart {
        /// The restarting node.
        node: NodeId,
    },
    /// Deliver the fault-detection signal to `node`, advancing it to the
    /// current target epoch (models the epoch broadcast of the live tiers).
    EpochSignal {
        /// The node receiving the detection signal.
        node: NodeId,
    },
}

impl Transition {
    /// True for transitions that *drain* the system (deliver, release, heal).
    /// A state with none of these enabled is quiescent: the quiescence
    /// invariants must hold there even if the issue budget or a crash episode
    /// is still unspent.
    pub fn is_draining(&self) -> bool {
        matches!(
            self,
            Transition::Deliver { .. }
                | Transition::Release { .. }
                | Transition::Restart { .. }
                | Transition::EpochSignal { .. }
        )
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Transition::Issue { node, obj } => write!(f, "issue node={node} {obj}"),
            Transition::Deliver { from, to, class } => {
                write!(f, "deliver {from}->{to} {class:?}")
            }
            Transition::Release { req } => write!(f, "release {req}"),
            Transition::Abandon { req } => write!(f, "abandon {req}"),
            Transition::Crash { node } => write!(f, "crash {node}"),
            Transition::Restart { node } => write!(f, "restart {node}"),
            Transition::EpochSignal { node } => write!(f, "epoch-signal {node}"),
        }
    }
}

/// Every transition enabled in `state`, in a fixed deterministic order:
/// draining transitions first (deliveries in channel order, then releases,
/// detection signals, restart), then issues, then crashes. The order shapes
/// the DFS and the sleep-set computation but never the set of states covered.
pub fn enabled(state: &SysState, scenario: &Scenario) -> Vec<Transition> {
    let mut out = Vec::new();
    for &(from, to, class) in state.channels.keys() {
        out.push(Transition::Deliver { from, to, class });
    }
    for s in &state.slots {
        if s.granted > 0 && !s.released && !s.lost && state.alive(s.node) {
            out.push(Transition::Release { req: s.req });
        }
    }
    let target = state.target_epoch();
    for core in &state.cores {
        if state.alive(core.node()) && core.epoch() < target {
            out.push(Transition::EpochSignal { node: core.node() });
        }
    }
    if let Some(v) = state.crash.down {
        out.push(Transition::Restart { node: v });
    }
    if (state.crash.abandoned as usize) < scenario.abandons {
        for s in &state.slots {
            if s.granted == 0 && !s.lost && !s.released && state.alive(s.node) {
                out.push(Transition::Abandon { req: s.req });
            }
        }
    }
    if state.slots.len() < scenario.max_requests {
        for core in &state.cores {
            if state.alive(core.node()) {
                for obj in 0..scenario.objects {
                    out.push(Transition::Issue {
                        node: core.node(),
                        obj: ObjectId(obj as u32),
                    });
                }
            }
        }
    }
    if state.crash.down.is_none() && (state.crash.episodes_used as usize) < scenario.crash_episodes
    {
        for v in 0..scenario.tree.node_count() {
            if v != scenario.tree.root() {
                out.push(Transition::Crash { node: v });
            }
        }
    }
    out
}

/// Apply `transition` to a copy of `state`, returning the successor and any
/// safety violations the step itself surfaced (structural action checks,
/// duplicate grants, duplicate `Queued` events, chain forks).
pub fn apply(
    state: &SysState,
    transition: Transition,
    scenario: &Scenario,
    bug: BugSwitch,
) -> (SysState, Vec<ModelViolation>) {
    let mut next = state.clone();
    let mut violations = Vec::new();
    match transition {
        Transition::Issue { node, obj } => {
            let mut actions = Vec::new();
            let req = next.cores[node].acquire(obj, &mut actions);
            next.slots.push(ReqSlot {
                req,
                node,
                obj,
                granted: 0,
                released: false,
                lost: false,
                grant_epoch: 0,
                queued_epochs: Vec::new(),
            });
            process_actions(&mut next, node, actions, scenario, bug, &mut violations);
        }
        Transition::Deliver { from, to, class } => {
            let Some(mut frame) = next.pop_frame((from, to, class)) else {
                return (next, violations); // Not enabled; nothing to do.
            };
            if !next.alive(to) {
                return (next, violations); // Dropped at the downed node.
            }
            if bug == BugSwitch::StaleFrameAccept {
                // Reverted fix: the link layer re-stamps stale frames with the
                // receiver's epoch, so the core's rejection path never fires.
                let current = next.cores[to].epoch();
                match &mut frame {
                    Frame::Queue { epoch, .. } | Frame::Token { epoch, .. } => {
                        if *epoch < current {
                            *epoch = current;
                        }
                    }
                }
            }
            let mut actions = Vec::new();
            match frame {
                Frame::Queue {
                    obj,
                    req,
                    origin,
                    epoch,
                } => next.cores[to].on_queue(from, obj, req, origin, epoch, &mut actions),
                Frame::Token { obj, req, epoch } => {
                    next.cores[to].on_token(obj, req, epoch, &mut actions)
                }
            }
            process_actions(&mut next, to, actions, scenario, bug, &mut violations);
        }
        Transition::Release { req } => {
            let Some((node, obj)) = next.slot(req).map(|s| (s.node, s.obj)) else {
                return (next, violations);
            };
            let mut actions = Vec::new();
            next.cores[node].on_release(obj, req, &mut actions);
            if let Some(s) = next.slot_mut(req) {
                s.released = true;
            }
            process_actions(&mut next, node, actions, scenario, bug, &mut violations);
        }
        Transition::Abandon { req } => {
            // Only the application-side waiter disappears; the cores and every
            // queued link still carry the request, so the grant will arrive
            // and must be self-released by the runtime (the PR 6 fix).
            next.crash.abandoned += 1;
            if let Some(s) = next.slot_mut(req) {
                s.lost = true;
            }
        }
        Transition::Crash { node } => {
            next.crash.episodes_used += 1;
            next.crash.fault_events += 1;
            next.crash.down = Some(node);
            // Volatile protocol state is lost and in-flight frames on incident
            // links are dropped in both directions.
            next.cores[node].reboot();
            next.sever_node(node);
            for s in &mut next.slots {
                if s.node != node {
                    continue;
                }
                if s.granted == 0 {
                    // The waiter died with the node: nobody is left to receive
                    // a grant for this request.
                    s.lost = true;
                } else if !s.released {
                    // The held token died with the reboot; the epoch bump will
                    // regenerate it. The waiter can never release explicitly.
                    s.released = true;
                }
            }
        }
        Transition::Restart { node } => {
            // The core was already reset at crash time (volatile state loss);
            // restarting brings the event loop back and, like every fault
            // event in the live runtimes, triggers a fresh detection broadcast
            // (which is what rescues requests whose mid-outage re-issue was
            // dropped at the downed node).
            if next.crash.down == Some(node) {
                next.crash.down = None;
                next.crash.fault_events += 1;
            }
        }
        Transition::EpochSignal { node } => {
            let target = next.target_epoch();
            let mut actions = Vec::new();
            next.cores[node].on_epoch(target, &mut actions);
            process_actions(&mut next, node, actions, scenario, bug, &mut violations);
        }
    }
    (next, violations)
}

/// Translate a batch of [`CoreAction`]s emitted at `me` into state updates,
/// exactly like the live runtimes' `apply_actions`: sends become frames on the
/// corresponding channels (with structural checks), grants update the waiter
/// bookkeeping (self-releasing orphaned grants, the PR 6 fix), and `Queued`
/// events feed the succession records.
///
/// Works through a FIFO worklist because an orphaned-grant self-release can
/// itself emit further actions (the token moving on to the successor).
fn process_actions(
    state: &mut SysState,
    me: NodeId,
    actions: Vec<CoreAction>,
    scenario: &Scenario,
    bug: BugSwitch,
    violations: &mut Vec<ModelViolation>,
) {
    let mut work: VecDeque<(NodeId, CoreAction)> = actions.into_iter().map(|a| (me, a)).collect();
    while let Some((me, action)) = work.pop_front() {
        match action {
            CoreAction::SendQueue {
                to,
                obj,
                req,
                origin,
                epoch,
            } => {
                if to == me {
                    violations.push(ModelViolation::new(
                        ModelInvariant::SelfSend,
                        format!("node {me} sent queue({req}, {obj}) to itself"),
                    ));
                } else if !is_tree_edge(scenario, me, to) {
                    violations.push(ModelViolation::new(
                        ModelInvariant::NonTreeSend,
                        format!("node {me} sent queue({req}, {obj}) to non-neighbour {to}"),
                    ));
                } else {
                    state.push_frame(
                        (me, to, ChannelClass::Tree),
                        Frame::Queue {
                            obj,
                            req,
                            origin,
                            epoch,
                        },
                    );
                }
            }
            CoreAction::SendToken {
                to,
                obj,
                req,
                epoch,
            } => {
                if to == me {
                    violations.push(ModelViolation::new(
                        ModelInvariant::SelfSend,
                        format!("node {me} sent {obj}'s token for {req} to itself"),
                    ));
                } else {
                    state.push_frame(
                        (me, to, ChannelClass::Direct),
                        Frame::Token { obj, req, epoch },
                    );
                }
            }
            CoreAction::Granted { obj, req } => {
                let Some(lost) = state.slot(req).map(|s| s.lost) else {
                    violations.push(ModelViolation::new(
                        ModelInvariant::UnknownGrant,
                        format!("node {me} was granted unknown request {req} for {obj}"),
                    ));
                    continue;
                };
                if lost {
                    // Orphaned grant: the waiter is gone. The fixed runtimes
                    // self-release so the token keeps flowing; the reverted bug
                    // leaves it wedged at this node forever.
                    if bug != BugSwitch::OrphanedGrantWedge {
                        let mut actions = Vec::new();
                        state.cores[me].on_release(obj, req, &mut actions);
                        work.extend(actions.into_iter().map(|a| (me, a)));
                    }
                } else {
                    let epoch = state.cores[me].epoch();
                    if let Some(s) = state.slot_mut(req) {
                        if s.granted >= 1 {
                            violations.push(ModelViolation::new(
                                ModelInvariant::GrantedTwice,
                                format!(
                                    "request {req} for {obj} granted again in epoch {epoch} \
                                     (already granted in epoch {})",
                                    s.grant_epoch
                                ),
                            ));
                        }
                        s.granted += 1;
                        s.grant_epoch = epoch;
                    }
                }
            }
            CoreAction::Queued {
                obj,
                pred,
                succ,
                origin: _,
                epoch,
            } => {
                if let Some(s) = state.slot_mut(succ) {
                    if s.queued_epochs.contains(&epoch) {
                        violations.push(ModelViolation::new(
                            ModelInvariant::ExactlyOnce,
                            format!("request {succ} for {obj} queued twice in epoch {epoch}"),
                        ));
                    } else {
                        s.queued_epochs.push(epoch);
                        s.queued_epochs.sort_unstable();
                    }
                }
                let fork = state
                    .queued_links
                    .iter()
                    .any(|&(o, e, p, s2)| o == obj && e == epoch && p == pred && s2 != succ);
                if fork {
                    violations.push(ModelViolation::new(
                        ModelInvariant::ChainFork,
                        format!(
                            "{obj} epoch {epoch}: two successors queued behind {pred} \
                             (second: {succ})"
                        ),
                    ));
                }
                state.queued_links.insert((obj, epoch, pred, succ));
            }
        }
    }
}

fn is_tree_edge(scenario: &Scenario, u: NodeId, v: NodeId) -> bool {
    scenario.tree.parent(u) == Some(v) || scenario.tree.parent(v) == Some(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SysState;
    use netgraph::{generators, RootedTree};

    fn scenario(n: usize, objects: usize, requests: usize, crashes: usize) -> Scenario {
        Scenario {
            tree: RootedTree::from_tree_graph(&generators::path(n), 0),
            objects,
            max_requests: requests,
            crash_episodes: crashes,
            abandons: 0,
        }
    }

    #[test]
    fn initial_enabled_set_is_issues_plus_crashes() {
        let sc = scenario(3, 2, 2, 1);
        let s = SysState::initial(&sc.tree, sc.objects);
        let ts = enabled(&s, &sc);
        let issues = ts
            .iter()
            .filter(|t| matches!(t, Transition::Issue { .. }))
            .count();
        let crashes = ts
            .iter()
            .filter(|t| matches!(t, Transition::Crash { .. }))
            .count();
        assert_eq!(issues, 6, "3 nodes x 2 objects");
        assert_eq!(crashes, 2, "both non-root nodes");
        assert_eq!(ts.len(), issues + crashes, "nothing to drain yet");
        assert!(ts.iter().all(|t| !t.is_draining()));
    }

    #[test]
    fn a_request_flows_to_the_root_and_back() {
        // Path 0-1-2, one object: node 2 issues; the queue() frame hops 2->1->0,
        // the root grants, the token frame travels 0->2 directly.
        let sc = scenario(3, 1, 1, 0);
        let mut s = SysState::initial(&sc.tree, sc.objects);
        let issue = Transition::Issue {
            node: 2,
            obj: ObjectId(0),
        };
        let (s1, v) = apply(&s, issue, &sc, BugSwitch::None);
        assert!(v.is_empty());
        assert_eq!(s1.frames_in_flight(), 1);
        let deliver1 = Transition::Deliver {
            from: 2,
            to: 1,
            class: ChannelClass::Tree,
        };
        let (s2, v) = apply(&s1, deliver1, &sc, BugSwitch::None);
        assert!(v.is_empty());
        let deliver2 = Transition::Deliver {
            from: 1,
            to: 0,
            class: ChannelClass::Tree,
        };
        let (s3, v) = apply(&s2, deliver2, &sc, BugSwitch::None);
        assert!(v.is_empty());
        // The root was the sink of r0 (already released): token sent directly.
        assert!(s3.channels.contains_key(&(0, 2, ChannelClass::Direct)));
        let deliver3 = Transition::Deliver {
            from: 0,
            to: 2,
            class: ChannelClass::Direct,
        };
        let (s4, v) = apply(&s3, deliver3, &sc, BugSwitch::None);
        assert!(v.is_empty());
        let slot = s4.slot(s4.slots[0].req).unwrap();
        assert_eq!(slot.granted, 1);
        assert_eq!(slot.queued_epochs, vec![0]);
        assert!(enabled(&s4, &sc)
            .iter()
            .any(|t| matches!(t, Transition::Release { .. })));
        s = s4;
        let release = Transition::Release {
            req: s.slots[0].req,
        };
        let (s5, v) = apply(&s, release, &sc, BugSwitch::None);
        assert!(v.is_empty());
        assert!(s5.slots[0].released);
    }

    #[test]
    fn crash_drops_incident_frames_and_marks_waiters() {
        let sc = scenario(3, 1, 2, 1);
        let s = SysState::initial(&sc.tree, sc.objects);
        let (s1, _) = apply(
            &s,
            Transition::Issue {
                node: 2,
                obj: ObjectId(0),
            },
            &sc,
            BugSwitch::None,
        );
        assert_eq!(s1.frames_in_flight(), 1);
        let (s2, v) = apply(&s1, Transition::Crash { node: 2 }, &sc, BugSwitch::None);
        assert!(v.is_empty());
        assert!(!s2.alive(2));
        assert_eq!(s2.frames_in_flight(), 0, "incident frame dropped");
        assert!(s2.slots[0].lost, "pending waiter died with the node");
        assert_eq!(s2.target_epoch(), 1);
        // Restart and detection signals are what remains before quiescence.
        let ts = enabled(&s2, &sc);
        assert!(ts.contains(&Transition::Restart { node: 2 }));
        assert!(ts.contains(&Transition::EpochSignal { node: 0 }));
        assert!(!ts.contains(&Transition::EpochSignal { node: 2 }), "down");
    }

    #[test]
    fn epoch_signal_reissues_pending_requests() {
        let sc = scenario(3, 1, 2, 1);
        let s = SysState::initial(&sc.tree, sc.objects);
        // Node 1 issues; frame still in flight when node 2 crashes.
        let (s1, _) = apply(
            &s,
            Transition::Issue {
                node: 1,
                obj: ObjectId(0),
            },
            &sc,
            BugSwitch::None,
        );
        let (s2, _) = apply(&s1, Transition::Crash { node: 2 }, &sc, BugSwitch::None);
        // Node 1 hears the detection signal: resets to the tree orientation and
        // re-issues its pending request under epoch 1.
        let (s3, v) = apply(
            &s2,
            Transition::EpochSignal { node: 1 },
            &sc,
            BugSwitch::None,
        );
        assert!(v.is_empty());
        assert_eq!(s3.cores[1].epoch(), 1);
        let reissued = s3
            .channels
            .get(&(1, 0, ChannelClass::Tree))
            .map(|q| q.iter().any(|f| f.epoch() == 1))
            .unwrap_or(false);
        assert!(reissued, "pending request re-sent under the new epoch");
    }
}
