//! The safety and quiescence invariants checked during exploration.
//!
//! **Safety invariants** hold in *every* reachable state and are checked after
//! every transition; some are structural and enforced inline while a transition
//! is applied (self-targeted sends, non-tree `queue()` routing, duplicate
//! grants, duplicate `Queued` events, chain forks). **Quiescence invariants**
//! hold in every *drained* state — one with no deliverable frame, no pending
//! release, no undelivered detection signal and no node down — and are what
//! turns the conformance suite's sampled churn contract into an exhaustively
//! verified one: deadlock-freedom (every surviving request granted) and one
//! complete, fork-free token chain per object in the final epoch.

use crate::state::{Frame, SysState};
use arrow_core::prelude::{ObjectId, RequestId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The invariant classes the checker can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelInvariant {
    /// A `SendToken`/`SendQueue` action targeted the acting node itself.
    SelfSend,
    /// A `queue()` frame was sent to a node that is not a tree neighbour.
    NonTreeSend,
    /// A request's token was granted to a live waiter more than once.
    GrantedTwice,
    /// A `Granted` action fired for a request id the model never issued
    /// (internal consistency guard — tokens are only ever sent to the node
    /// that issued the granted request).
    UnknownGrant,
    /// More than one `Queued` event for the same `(request, epoch)`
    /// (Definition 3.2 gives each request exactly one predecessor per epoch).
    ExactlyOnce,
    /// Two different successors queued behind the same `(object, epoch,
    /// predecessor)` — a fork in the token chain.
    ChainFork,
    /// More than one token materialised for one `(object, epoch)`: the sum of
    /// in-flight token frames and granted-token bookkeeping entries exceeded 1.
    TokenCustody,
    /// In a uniform-epoch, fault-quiet state some object's sink count differed
    /// from `1 + (queue() frames in flight)` — the path-reversal conservation
    /// law (at most one un-granted chain head per object and epoch).
    SinkCount,
    /// A drained state left a surviving request ungranted (deadlock / wedged
    /// token).
    Deadlock,
    /// The final epoch's succession records do not form one complete chain
    /// from the virtual root request covering every participant.
    BrokenChain,
}

impl fmt::Display for ModelInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModelInvariant::SelfSend => "self-send",
            ModelInvariant::NonTreeSend => "non-tree-send",
            ModelInvariant::GrantedTwice => "granted-twice",
            ModelInvariant::UnknownGrant => "unknown-grant",
            ModelInvariant::ExactlyOnce => "exactly-once",
            ModelInvariant::ChainFork => "chain-fork",
            ModelInvariant::TokenCustody => "token-custody",
            ModelInvariant::SinkCount => "sink-count",
            ModelInvariant::Deadlock => "deadlock",
            ModelInvariant::BrokenChain => "broken-chain",
        };
        write!(f, "{name}")
    }
}

/// One invariant violation, with the offending values rendered into `detail`.
#[derive(Debug, Clone)]
pub struct ModelViolation {
    /// Which invariant broke.
    pub invariant: ModelInvariant,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl ModelViolation {
    /// Convenience constructor.
    pub fn new(invariant: ModelInvariant, detail: impl Into<String>) -> Self {
        ModelViolation {
            invariant,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Safety checks evaluated on every reachable state.
///
/// Token custody is counted per `(object, epoch)` as in-flight token frames of
/// that epoch plus granted-token bookkeeping entries at nodes currently in that
/// epoch (an epoch bump discards granted entries, so a core's entries always
/// belong to its current epoch). The sink-conservation law is only evaluated
/// when it is meaningful: every node alive and at the target epoch, and no
/// stale frame in flight — mid-recovery states legitimately break it.
pub fn check_state(state: &SysState, objects: usize) -> Vec<ModelViolation> {
    let mut violations = Vec::new();

    // Token custody: per (object, epoch), frames + granted entries <= 1.
    let mut custody: BTreeMap<(ObjectId, u64), u32> = BTreeMap::new();
    for queue in state.channels.values() {
        for frame in queue {
            if let Frame::Token { obj, epoch, .. } = *frame {
                *custody.entry((obj, epoch)).or_insert(0) += 1;
            }
        }
    }
    for core in &state.cores {
        let snap = core.snapshot();
        for &(obj, _req, granted, _released, _succ) in &snap.tokens {
            if granted {
                *custody.entry((obj, snap.epoch)).or_insert(0) += 1;
            }
        }
    }
    for (&(obj, epoch), &count) in &custody {
        if count > 1 {
            violations.push(ModelViolation::new(
                ModelInvariant::TokenCustody,
                format!("{count} tokens materialised for {obj} in epoch {epoch}"),
            ));
        }
    }

    // Sink conservation, in fault-quiet uniform-epoch states only.
    let target = state.target_epoch();
    let uniform = state.crash.down.is_none()
        && state.cores.iter().all(|c| c.epoch() == target)
        && state
            .channels
            .values()
            .flatten()
            .all(|f| f.epoch() == target);
    if uniform {
        for obj in (0..objects).map(|o| ObjectId(o as u32)) {
            let sinks = state
                .cores
                .iter()
                .filter(|c| c.link_of(obj) == c.node())
                .count();
            let in_flight = state
                .channels
                .values()
                .flatten()
                .filter(|f| matches!(f, Frame::Queue { obj: o, .. } if *o == obj))
                .count();
            if sinks != 1 + in_flight {
                violations.push(ModelViolation::new(
                    ModelInvariant::SinkCount,
                    format!(
                        "{obj}: {sinks} sinks with {in_flight} queue() frames in flight \
                         (conservation requires sinks == 1 + in-flight)"
                    ),
                ));
            }
        }
    }

    violations
}

/// Quiescence checks, evaluated on every *drained* state (no frame deliverable,
/// no release pending, no detection signal undelivered, no node down — whether
/// or not the issue budget or a crash episode is still unspent).
///
/// * **Deadlock-freedom**: every request whose waiter survived is granted.
///   (A granted-but-unreleased request cannot occur here: its release
///   transition would still be enabled, so the state would not be drained.)
/// * **Churn contract, exhaustively**: for each object, the `Queued` records of
///   the final epoch form one fork-free chain starting at the virtual root
///   request and covering every request queued in that epoch. Forks were
///   already rejected incrementally; what remains is detecting *orphan loops*
///   (a group of requests queued behind each other but unreachable from `r0`).
pub fn check_quiescent(state: &SysState, objects: usize) -> Vec<ModelViolation> {
    let mut violations = Vec::new();
    for s in &state.slots {
        if !s.lost && s.granted != 1 {
            violations.push(ModelViolation::new(
                ModelInvariant::Deadlock,
                format!(
                    "request {} at node {} for {} drained with {} grants (lost={})",
                    s.req, s.node, s.obj, s.granted, s.lost
                ),
            ));
        }
    }

    let epoch = state.target_epoch();
    for obj in (0..objects).map(|o| ObjectId(o as u32)) {
        let succ_of: BTreeMap<RequestId, RequestId> = state
            .queued_links
            .iter()
            .filter(|&&(o, e, _, _)| o == obj && e == epoch)
            .map(|&(_, _, pred, succ)| (pred, succ))
            .collect();
        let mut chain = BTreeSet::new();
        let mut cursor = RequestId::ROOT;
        while let Some(&next) = succ_of.get(&cursor) {
            if !chain.insert(next) {
                break; // Cycle through the chain itself; coverage check reports.
            }
            cursor = next;
        }
        for s in &state.slots {
            if s.obj == obj && s.queued_epochs.contains(&epoch) && !chain.contains(&s.req) {
                violations.push(ModelViolation::new(
                    ModelInvariant::BrokenChain,
                    format!(
                        "{obj}: request {} was queued in final epoch {epoch} but is not \
                         reachable from r0 (chain {chain:?}, successors {succ_of:?})",
                        s.req
                    ),
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ChannelClass, ReqSlot};
    use netgraph::{generators, RootedTree};

    fn tree(n: usize) -> RootedTree {
        RootedTree::from_tree_graph(&generators::path(n), 0)
    }

    #[test]
    fn initial_state_is_clean() {
        let s = SysState::initial(&tree(4), 2);
        assert!(check_state(&s, 2).is_empty());
        assert!(check_quiescent(&s, 2).is_empty());
    }

    #[test]
    fn two_token_frames_break_custody() {
        let mut s = SysState::initial(&tree(3), 1);
        for to in [1, 2] {
            s.push_frame(
                (0, to, ChannelClass::Direct),
                Frame::Token {
                    obj: ObjectId(0),
                    req: RequestId(to as u64),
                    epoch: 0,
                },
            );
        }
        let violations = check_state(&s, 1);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == ModelInvariant::TokenCustody),
            "{violations:?}"
        );
    }

    #[test]
    fn stale_epoch_token_does_not_break_current_custody() {
        let mut s = SysState::initial(&tree(3), 1);
        s.crash.fault_events = 1; // target epoch 1
        s.push_frame(
            (0, 1, ChannelClass::Direct),
            Frame::Token {
                obj: ObjectId(0),
                req: RequestId(1),
                epoch: 0,
            },
        );
        s.push_frame(
            (0, 2, ChannelClass::Direct),
            Frame::Token {
                obj: ObjectId(0),
                req: RequestId(2),
                epoch: 1,
            },
        );
        // One token per epoch: fine. (The sink law is skipped: a stale frame is
        // in flight.)
        assert!(check_state(&s, 1).is_empty());
    }

    #[test]
    fn ungranted_slot_in_drained_state_is_a_deadlock() {
        let mut s = SysState::initial(&tree(3), 1);
        s.slots.push(ReqSlot {
            req: RequestId(4),
            node: 1,
            obj: ObjectId(0),
            granted: 0,
            released: false,
            lost: false,
            grant_epoch: 0,
            queued_epochs: vec![0],
        });
        let violations = check_quiescent(&s, 1);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == ModelInvariant::Deadlock),
            "{violations:?}"
        );
        // A lost waiter is excused.
        s.slots[0].lost = true;
        // ...but its absence from the final chain is also excused only because
        // the chain check skips requests not queued in the final epoch of a
        // *granted* run; mark it unqueued to isolate the deadlock check.
        s.slots[0].queued_epochs.clear();
        assert!(check_quiescent(&s, 1).is_empty());
    }

    #[test]
    fn orphan_loop_is_a_broken_chain() {
        let mut s = SysState::initial(&tree(3), 1);
        let (a, b) = (RequestId(4), RequestId(5));
        for (req, node) in [(a, 1), (b, 2)] {
            s.slots.push(ReqSlot {
                req,
                node,
                obj: ObjectId(0),
                granted: 1,
                released: true,
                lost: false,
                grant_epoch: 0,
                queued_epochs: vec![0],
            });
        }
        // a and b queued behind each other, disconnected from r0.
        s.queued_links.insert((ObjectId(0), 0, a, b));
        s.queued_links.insert((ObjectId(0), 0, b, a));
        let violations = check_quiescent(&s, 1);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == ModelInvariant::BrokenChain),
            "{violations:?}"
        );
    }
}
