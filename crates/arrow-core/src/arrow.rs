//! The arrow protocol node automaton (Section 2 of the paper).
//!
//! Every node `v` keeps a pointer `link(v)` to a neighbour in the pre-selected
//! spanning tree (or to itself, in which case `v` is the *sink*), and `id(v)`, the id
//! of the last queuing request issued by `v` (`⊥` if none; the initial root holds the
//! virtual request `r0`).
//!
//! * When `v` **issues** a request `a` it atomically sets `id(v) ← a`, sends
//!   `queue(a)` to `link(v)` and sets `link(v) ← v`.
//! * When `u` **receives** `queue(a)` from `w` it atomically flips `link(u) ← w`; if
//!   the old link pointed to another node it forwards `queue(a)` there, otherwise `u`
//!   was the sink and `a` has been queued behind `id(u)` — the queuing of `a` is
//!   complete.
//!
//! The node also implements the optional requester acknowledgement used by the
//! paper's experiment, per-message local service time (see
//! [`crate::protocol::ServiceQueue`]) and the closed-loop workload of Section 5.

use crate::order::OrderRecord;
use crate::protocol::{ProtoMsg, ServiceQueue, WorkItem, SERVICE_TIMER_TAG};
use crate::request::RequestId;
use crate::workload::ClosedLoopSpec;
use desim::{Context, Process, SimTime};
use netgraph::NodeId;

/// Per-node state of the arrow protocol.
#[derive(Debug)]
pub struct ArrowNode {
    me: NodeId,
    /// `link(v)`: a tree neighbour, or `me` when this node is a sink.
    link: NodeId,
    /// `id(v)`: the last request issued by this node (`None` = ⊥). The initial root
    /// starts with the virtual request [`RequestId::ROOT`].
    last_id: Option<RequestId>,
    /// Whether to send a [`ProtoMsg::Found`] ack back to the requester.
    send_ack: bool,
    /// Local per-message service time model.
    service: ServiceQueue,
    /// Closed-loop workload state: requests still to issue and the issue sequence.
    closed_loop: Option<ClosedLoopState>,
    /// Successor notifications recorded at this node (it was the sink).
    records: Vec<OrderRecord>,
    /// Requests issued by this node and their issue times.
    issued: Vec<(RequestId, SimTime)>,
    /// Completions of this node's own requests (ack received or locally satisfied),
    /// with the completion time — used by the closed-loop experiment.
    own_completions: Vec<(RequestId, SimTime)>,
    /// Number of `queue()` messages this node sent to *another* node (inter-processor
    /// hops, the quantity of Figure 11).
    queue_hops: u64,
}

#[derive(Debug)]
struct ClosedLoopState {
    remaining: u64,
    next_seq: u64,
    total_nodes: u64,
}

impl ClosedLoopState {
    fn next_request_id(&mut self, node: NodeId) -> RequestId {
        // Unique across nodes: interleave by node id. +1 keeps ids disjoint from the
        // reserved root id 0.
        let id = 1 + node as u64 + self.next_seq * self.total_nodes;
        self.next_seq += 1;
        RequestId(id)
    }
}

impl ArrowNode {
    /// Create the arrow automaton for node `me`.
    ///
    /// * `initial_link` — the initial pointer: the tree parent of `me`, or `me` itself
    ///   for the initial root (which then also holds the virtual request `r0`).
    /// * `send_ack` — send `Found` acknowledgements back to requesters.
    /// * `service_time` — local per-message service time in time units (0 = free).
    pub fn new(me: NodeId, initial_link: NodeId, send_ack: bool, service_time: f64) -> Self {
        let is_root = initial_link == me;
        ArrowNode {
            me,
            link: initial_link,
            last_id: if is_root { Some(RequestId::ROOT) } else { None },
            send_ack,
            service: ServiceQueue::new(service_time),
            closed_loop: None,
            records: Vec::new(),
            issued: Vec::new(),
            own_completions: Vec::new(),
            queue_hops: 0,
        }
    }

    /// Enable the closed-loop workload: this node will issue `spec.requests_per_node`
    /// requests, the first at time 0 and each subsequent one as soon as the previous
    /// completes (plus the local service time).
    pub fn enable_closed_loop(&mut self, spec: &ClosedLoopSpec, total_nodes: usize) {
        assert!(
            spec.local_service_time > 0.0,
            "closed-loop workloads need a positive local service time \
             (otherwise a node would issue its whole budget in a single instant)"
        );
        self.closed_loop = Some(ClosedLoopState {
            remaining: spec.requests_per_node,
            next_seq: 0,
            total_nodes: total_nodes as u64,
        });
        self.service = ServiceQueue::new(spec.local_service_time);
    }

    /// Current link pointer (`me` when this node is a sink).
    pub fn link(&self) -> NodeId {
        self.link
    }

    /// True if this node is currently a sink (`link(v) = v`).
    pub fn is_sink(&self) -> bool {
        self.link == self.me
    }

    /// `id(v)`: the last request issued here (`None` = ⊥).
    pub fn last_request(&self) -> Option<RequestId> {
        self.last_id
    }

    /// Successor notifications recorded at this node.
    pub fn records(&self) -> &[OrderRecord] {
        &self.records
    }

    /// Requests issued by this node with their issue times.
    pub fn issued(&self) -> &[(RequestId, SimTime)] {
        &self.issued
    }

    /// Completions of this node's own requests (only tracked when acks are enabled
    /// or the request completed locally).
    pub fn own_completions(&self) -> &[(RequestId, SimTime)] {
        &self.own_completions
    }

    /// Inter-processor `queue()` messages sent by this node.
    pub fn queue_hops(&self) -> u64 {
        self.queue_hops
    }

    /// The actual protocol logic, invoked once the service queue releases a work item.
    fn process(&mut self, ctx: &mut Context<ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Issue { req } => self.handle_issue(ctx, req),
            ProtoMsg::Queue { req, origin } => self.handle_queue(ctx, from, req, origin),
            ProtoMsg::Found { req, pred } => self.handle_found(ctx, req, pred),
            other => panic!("arrow node received non-arrow message {other:?}"),
        }
    }

    /// Node `v` issues request `a` (paper, Section 2):
    /// `id(v) ← a`; send `queue(a)` to `link(v)`; `link(v) ← v`.
    fn handle_issue(&mut self, ctx: &mut Context<ProtoMsg>, req: RequestId) {
        assert!(!req.is_root(), "cannot issue the virtual root request");
        self.issued.push((req, ctx.now()));
        let previous = self.last_id;
        self.last_id = Some(req);
        if self.link == self.me {
            // v is the sink: the request is queued behind id(v) without any message.
            let pred = previous.expect(
                "a sink always holds an id: either the virtual root request or \
                 a request it issued earlier",
            );
            self.complete_queuing(ctx, req, pred, self.me);
        } else {
            let target = self.link;
            self.link = self.me;
            self.queue_hops += 1;
            ctx.send(
                target,
                ProtoMsg::Queue {
                    req,
                    origin: self.me,
                },
            );
        }
    }

    /// Node `u` receives `queue(a)` from `w`: flip `link(u) ← w`; forward to the old
    /// link target unless `u` was the sink, in which case `a` is queued behind `id(u)`.
    fn handle_queue(
        &mut self,
        ctx: &mut Context<ProtoMsg>,
        from: NodeId,
        req: RequestId,
        origin: NodeId,
    ) {
        let old_link = self.link;
        self.link = from;
        if old_link == self.me {
            // This node was the sink: req is queued behind id(u).
            let pred = self.last_id.expect(
                "a sink always holds an id: either the virtual root request or \
                 a request it issued earlier",
            );
            self.complete_queuing(ctx, req, pred, origin);
        } else {
            if old_link != self.me {
                self.queue_hops += 1;
            }
            ctx.send(old_link, ProtoMsg::Queue { req, origin });
        }
    }

    /// The queuing of `req` behind `pred` completed at this node; record it, notify the
    /// requester if acks are on, and feed the closed-loop workload.
    fn complete_queuing(
        &mut self,
        ctx: &mut Context<ProtoMsg>,
        req: RequestId,
        pred: RequestId,
        origin: NodeId,
    ) {
        self.records.push(OrderRecord {
            predecessor: pred,
            successor: req,
            at_node: self.me,
            informed_at: ctx.now(),
        });
        ctx.record_completion(req.0);
        if origin == self.me {
            // The requester is local: its request completed right here.
            self.note_own_completion(ctx, req);
        } else if self.send_ack {
            ctx.send(origin, ProtoMsg::Found { req, pred });
        }
    }

    fn handle_found(&mut self, ctx: &mut Context<ProtoMsg>, req: RequestId, _pred: RequestId) {
        self.note_own_completion(ctx, req);
    }

    /// One of this node's own requests completed; in closed-loop mode, issue the next.
    fn note_own_completion(&mut self, ctx: &mut Context<ProtoMsg>, req: RequestId) {
        self.own_completions.push((req, ctx.now()));
        if let Some(cl) = &mut self.closed_loop {
            if cl.remaining > 0 {
                cl.remaining -= 1;
                if cl.remaining > 0 {
                    let next = cl.next_request_id(self.me);
                    // Route the next issue through the service queue so it pays the
                    // local service time before being processed.
                    if let Some((f, m)) = self
                        .service
                        .offer(ctx, (self.me, ProtoMsg::Issue { req: next }))
                    {
                        self.process(ctx, f, m);
                    }
                }
            }
        }
    }
}

impl Process<ProtoMsg> for ArrowNode {
    fn on_start(&mut self, ctx: &mut Context<ProtoMsg>) {
        // Closed-loop mode: issue the first request at time zero.
        if let Some(cl) = &mut self.closed_loop {
            if cl.remaining > 0 {
                let first = cl.next_request_id(self.me);
                let item: WorkItem = (self.me, ProtoMsg::Issue { req: first });
                if let Some((f, m)) = self.service.offer(ctx, item) {
                    self.process(ctx, f, m);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        if let Some((f, m)) = self.service.offer(ctx, (from, msg)) {
            self.process(ctx, f, m);
        }
    }

    fn on_external(&mut self, ctx: &mut Context<ProtoMsg>, input: ProtoMsg) {
        let me = self.me;
        if let Some((f, m)) = self.service.offer(ctx, (me, input)) {
            self.process(ctx, f, m);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<ProtoMsg>, tag: u64) {
        if tag == SERVICE_TIMER_TAG {
            if let Some((f, m)) = self.service.on_timer(ctx) {
                self.process(ctx, f, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{SimConfig, SimTime, Simulator};

    /// Build arrow nodes for a path 0 - 1 - 2 - 3 rooted at node 0
    /// (all links initially point towards 0).
    fn path_nodes(n: usize, root: usize, ack: bool) -> Vec<ArrowNode> {
        (0..n)
            .map(|v| {
                let link = if v == root {
                    v
                } else if v > root {
                    v - 1
                } else {
                    v + 1
                };
                ArrowNode::new(v, link, ack, 0.0)
            })
            .collect()
    }

    #[test]
    fn initial_root_is_sink_with_virtual_request() {
        let nodes = path_nodes(4, 0, false);
        assert!(nodes[0].is_sink());
        assert_eq!(nodes[0].last_request(), Some(RequestId::ROOT));
        assert!(!nodes[1].is_sink());
        assert_eq!(nodes[1].last_request(), None);
        assert_eq!(nodes[1].link(), 0);
    }

    #[test]
    fn single_remote_request_travels_to_root_and_reverses_path() {
        let mut sim = Simulator::new(path_nodes(4, 0, false), SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 3, ProtoMsg::Issue { req: RequestId(1) });
        sim.run();
        // The request from node 3 is ordered behind the virtual root request at node 0.
        let recs = sim.node(0).records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].predecessor, RequestId::ROOT);
        assert_eq!(recs[0].successor, RequestId(1));
        assert_eq!(recs[0].informed_at, SimTime::from_units(3));
        // All pointers now lead to node 3 (the new tail).
        assert_eq!(sim.node(0).link(), 1);
        assert_eq!(sim.node(1).link(), 2);
        assert_eq!(sim.node(2).link(), 3);
        assert!(sim.node(3).is_sink());
        // 3 inter-processor queue hops.
        let hops: u64 = (0..4).map(|v| sim.node(v).queue_hops()).sum();
        assert_eq!(hops, 3);
    }

    #[test]
    fn local_request_at_root_completes_without_messages() {
        let mut sim = Simulator::new(path_nodes(3, 0, false), SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 0, ProtoMsg::Issue { req: RequestId(1) });
        sim.run();
        assert_eq!(sim.stats().messages_delivered, 0);
        let recs = sim.node(0).records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].predecessor, RequestId::ROOT);
        // The root remains the sink and its id is now the new request.
        assert!(sim.node(0).is_sink());
        assert_eq!(sim.node(0).last_request(), Some(RequestId(1)));
        assert_eq!(sim.node(0).own_completions().len(), 1);
    }

    #[test]
    fn two_sequential_requests_chain_correctly() {
        let mut sim = Simulator::new(path_nodes(4, 0, false), SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 3, ProtoMsg::Issue { req: RequestId(1) });
        sim.schedule_external(
            SimTime::from_units(100),
            1,
            ProtoMsg::Issue { req: RequestId(2) },
        );
        sim.run();
        // Request 1 behind root (recorded at node 0), request 2 behind request 1
        // (recorded at node 3, which holds request 1).
        assert_eq!(sim.node(0).records().len(), 1);
        let rec3 = sim.node(3).records();
        assert_eq!(rec3.len(), 1);
        assert_eq!(rec3[0].predecessor, RequestId(1));
        assert_eq!(rec3[0].successor, RequestId(2));
        // d_T(1, 3) = 2, issued at t=100 => informed at t=102.
        assert_eq!(rec3[0].informed_at, SimTime::from_units(102));
    }

    #[test]
    fn concurrent_requests_are_all_queued_exactly_once() {
        let n = 8;
        // Path 0-1-...-7 rooted at 0.
        let mut sim = Simulator::new(path_nodes(n, 0, false), SimConfig::synchronous());
        for v in 1..n {
            sim.schedule_external(
                SimTime::ZERO,
                v,
                ProtoMsg::Issue {
                    req: RequestId(v as u64),
                },
            );
        }
        sim.run();
        let mut successors: Vec<RequestId> = (0..n)
            .flat_map(|v| sim.node(v).records().iter().map(|r| r.successor))
            .collect();
        successors.sort();
        successors.dedup();
        assert_eq!(successors.len(), n - 1, "every request queued exactly once");
        // Exactly one node is the final sink.
        let sinks = (0..n).filter(|&v| sim.node(v).is_sink()).count();
        assert_eq!(sinks, 1);
    }

    #[test]
    fn ack_reaches_the_requester() {
        let mut sim = Simulator::new(path_nodes(4, 0, true), SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 2, ProtoMsg::Issue { req: RequestId(1) });
        sim.run();
        let completions = sim.node(2).own_completions();
        assert_eq!(completions.len(), 1);
        // 2 hops to reach the root plus 1 hop (direct) back.
        assert_eq!(completions[0].1, SimTime::from_units(3));
    }

    #[test]
    fn closed_loop_issues_the_configured_number_of_requests() {
        let spec = ClosedLoopSpec {
            requests_per_node: 5,
            local_service_time: 0.1,
        };
        let mut nodes = path_nodes(3, 0, true);
        for node in &mut nodes {
            node.enable_closed_loop(&spec, 3);
        }
        let mut sim = Simulator::new(nodes, SimConfig::synchronous());
        sim.run();
        let total_issued: usize = (0..3).map(|v| sim.node(v).issued().len()).sum();
        assert_eq!(total_issued, 15);
        let total_recorded: usize = (0..3).map(|v| sim.node(v).records().len()).sum();
        assert_eq!(total_recorded, 15);
        // Ids are globally unique.
        let mut ids: Vec<u64> = (0..3)
            .flat_map(|v| sim.node(v).issued().iter().map(|(r, _)| r.0))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15);
    }

    #[test]
    #[should_panic(expected = "positive local service time")]
    fn closed_loop_requires_positive_service_time() {
        let mut node = ArrowNode::new(0, 0, true, 0.0);
        node.enable_closed_loop(
            &ClosedLoopSpec {
                requests_per_node: 10,
                local_service_time: 0.0,
            },
            1,
        );
    }

    #[test]
    #[should_panic(expected = "non-arrow message")]
    fn central_message_panics_on_arrow_node() {
        let mut node = ArrowNode::new(0, 0, false, 0.0);
        let mut ctx = Context::new(0, SimTime::ZERO);
        node.on_message(
            &mut ctx,
            1,
            ProtoMsg::CentralEnqueue {
                req: RequestId(1),
                origin: 1,
            },
        );
    }
}
