//! The arrow protocol node automaton (Section 2 of the paper), generalized to a
//! multi-object directory.
//!
//! For every object `o` served by the directory, every node `v` keeps a pointer
//! `link_o(v)` to a neighbour in the pre-selected spanning tree (or to itself, in
//! which case `v` is object `o`'s *sink*), and `id_o(v)`, the id of the last queuing
//! request for `o` issued by `v` (`⊥` if none; the object's initial root holds the
//! virtual request `r0`). Single-object deployments are the `K = 1` special case and
//! use the original constructors/accessors unchanged.
//!
//! * When `v` **issues** a request `a` for object `o` it atomically sets
//!   `id_o(v) ← a`, sends `queue(a, o)` to `link_o(v)` and sets `link_o(v) ← v`.
//! * When `u` **receives** `queue(a, o)` from `w` it atomically flips
//!   `link_o(u) ← w`; if the old link pointed to another node it forwards
//!   `queue(a, o)` there, otherwise `u` was `o`'s sink and `a` has been queued behind
//!   `id_o(u)` — the queuing of `a` is complete.
//!
//! Objects interact only through the shared physical links and the shared local
//! service queue; their link pointers and queues are fully independent.
//!
//! The node also implements the optional requester acknowledgement used by the
//! paper's experiment (routed over the graph metric `d_G` when a distance matrix is
//! provided via [`ArrowNode::set_distances`]), per-message local service time (see
//! [`crate::protocol::ServiceQueue`]) and the closed-loop workload of Section 5.

use crate::order::OrderRecord;
use crate::protocol::{ProtoMsg, ServiceQueue, WorkItem, SERVICE_TIMER_TAG};
use crate::request::{ObjectId, RequestId};
use crate::workload::ClosedLoopSpec;
use arrow_trace::{NoProbe, Probe, ProbeEvent};
use desim::{Context, Process, SimDuration, SimTime};
use netgraph::{DistanceMatrix, NodeId};
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

/// Per-object arrow state at one node: the link pointer and the last issued id.
#[derive(Debug, Clone, Copy)]
struct ObjectState {
    /// `link_o(v)`: a tree neighbour, or the node itself when it is the sink.
    link: NodeId,
    /// `id_o(v)`: the last request for this object issued here (`None` = ⊥). The
    /// object's initial root starts with the virtual request [`RequestId::ROOT`].
    last_id: Option<RequestId>,
}

/// Per-node state of the arrow protocol (one independent arrow automaton per object).
///
/// `P` is the observability hook ([`arrow_trace::Probe`]); the default
/// [`NoProbe`] compiles the instrumentation out. A recording node (see
/// [`ArrowNode::new_multi_with_probe`]) emits a [`ProbeEvent::Tick`] carrying
/// the simulation clock before each dispatch, so a shared sim-mode recorder
/// timestamps events in simulation units.
#[derive(Debug)]
pub struct ArrowNode<P: Probe = NoProbe> {
    me: NodeId,
    /// Per-object arrow state, indexed by [`ObjectId`].
    objects: Vec<ObjectState>,
    /// Whether to send a [`ProtoMsg::Found`] ack back to the requester.
    send_ack: bool,
    /// All-pairs graph distances: when present, acks travel as direct sends paying
    /// `d_G(me, origin)` instead of whatever link happens to connect the pair.
    distances: Option<Arc<DistanceMatrix>>,
    /// Local per-message service time model (shared across objects — the CPU is one).
    service: ServiceQueue,
    /// Closed-loop workload state: requests still to issue and the issue sequence.
    closed_loop: Option<ClosedLoopState>,
    /// Successor notifications recorded at this node (it was the sink).
    records: Vec<OrderRecord>,
    /// Requests issued by this node: `(request, object, issue time)`.
    issued: Vec<(RequestId, ObjectId, SimTime)>,
    /// Completions of this node's own requests (ack received or locally satisfied),
    /// with the completion time — used by the closed-loop experiment.
    own_completions: Vec<(RequestId, SimTime)>,
    /// Number of `queue()` messages this node sent to *another* node (inter-processor
    /// hops, the quantity of Figure 11).
    queue_hops: u64,
    /// First protocol violation observed (e.g. a non-arrow message): the offending
    /// input is dropped and described here instead of aborting the simulation, so
    /// the harness can surface it as a typed [`crate::run::RunError`].
    violation: Option<String>,
    /// Current recovery epoch (0 until a fault detection signal arrives).
    epoch: u64,
    /// The initial link pointers, kept so an epoch bump can reset the tree
    /// orientation (all pointers back towards each object's initial root).
    initial_links: Vec<NodeId>,
    /// This node's own requests that have not completed yet: re-issued (under the
    /// same ids) after every epoch bump, so requests lost to a fault recover.
    pending: BTreeSet<(ObjectId, RequestId)>,
    /// Own requests that have completed, used to drop duplicate completion
    /// notifications arriving across epochs (first one wins).
    completed: HashSet<RequestId>,
    /// Stale-epoch messages dropped at this node.
    stale_drops: u64,
    /// Duplicate completion notifications suppressed at this node.
    duplicate_grants: u64,
    /// The observability hook (zero-sized and inert for [`NoProbe`]).
    probe: P,
}

#[derive(Debug)]
struct ClosedLoopState {
    remaining: u64,
    next_seq: u64,
    total_nodes: u64,
}

impl ClosedLoopState {
    fn next_request_id(&mut self, node: NodeId) -> RequestId {
        // Unique across nodes: interleave by node id. +1 keeps ids disjoint from the
        // reserved root id 0.
        let id = 1 + node as u64 + self.next_seq * self.total_nodes;
        self.next_seq += 1;
        RequestId(id)
    }
}

impl ArrowNode {
    /// Create the single-object arrow automaton for node `me`.
    ///
    /// * `initial_link` — the initial pointer: the tree parent of `me`, or `me` itself
    ///   for the initial root (which then also holds the virtual request `r0`).
    /// * `send_ack` — send `Found` acknowledgements back to requesters.
    /// * `service_time` — local per-message service time in time units (0 = free).
    pub fn new(me: NodeId, initial_link: NodeId, send_ack: bool, service_time: f64) -> Self {
        ArrowNode::new_multi(me, &[initial_link], send_ack, service_time)
    }

    /// Create the arrow automaton for node `me` serving `initial_links.len()` objects
    /// over one tree. `initial_links[k]` is this node's initial pointer for object
    /// `k`: its tree parent towards object `k`'s initial root, or `me` itself when
    /// this node *is* that root (it then holds object `k`'s virtual request `r0`).
    ///
    /// # Panics
    /// If `initial_links` is empty (a directory serves at least one object).
    pub fn new_multi(
        me: NodeId,
        initial_links: &[NodeId],
        send_ack: bool,
        service_time: f64,
    ) -> Self {
        ArrowNode::new_multi_with_probe(me, initial_links, send_ack, service_time, NoProbe)
    }
}

impl<P: Probe> ArrowNode<P> {
    /// Like [`ArrowNode::new_multi`], with a recording probe observing every
    /// protocol transition of this node.
    ///
    /// # Panics
    /// If `initial_links` is empty (a directory serves at least one object).
    pub fn new_multi_with_probe(
        me: NodeId,
        initial_links: &[NodeId],
        send_ack: bool,
        service_time: f64,
        probe: P,
    ) -> Self {
        assert!(
            !initial_links.is_empty(),
            "a directory node serves at least one object"
        );
        let objects = initial_links
            .iter()
            .map(|&link| ObjectState {
                link,
                last_id: if link == me {
                    Some(RequestId::ROOT)
                } else {
                    None
                },
            })
            .collect();
        ArrowNode {
            me,
            objects,
            send_ack,
            distances: None,
            service: ServiceQueue::new(service_time),
            closed_loop: None,
            records: Vec::new(),
            issued: Vec::new(),
            own_completions: Vec::new(),
            queue_hops: 0,
            violation: None,
            epoch: 0,
            initial_links: initial_links.to_vec(),
            pending: BTreeSet::new(),
            completed: HashSet::new(),
            stale_drops: 0,
            duplicate_grants: 0,
            probe,
        }
    }

    /// Provide the all-pairs graph distances; from then on `Found` acknowledgements
    /// travel as direct sends paying exactly `d_G(me, requester)` — the cost model of
    /// Section 5 — instead of the weight of whatever single link joins the pair.
    ///
    /// Note that direct sends bypass the simulator's latency model: even under the
    /// asynchronous model, acks take deterministically `d_G`. Acks are not part of
    /// the protocol cost the analysis randomises, so this only sharpens the
    /// completion-latency measurement.
    pub fn set_distances(&mut self, distances: Arc<DistanceMatrix>) {
        self.distances = Some(distances);
    }

    /// Number of objects this node serves.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    fn object(&self, obj: ObjectId) -> &ObjectState {
        self.objects
            .get(obj.0 as usize)
            .unwrap_or_else(|| panic!("node {} does not serve object {obj}", self.me))
    }

    fn object_mut(&mut self, obj: ObjectId) -> &mut ObjectState {
        let me = self.me;
        self.objects
            .get_mut(obj.0 as usize)
            .unwrap_or_else(|| panic!("node {me} does not serve object {obj}"))
    }

    /// Enable the closed-loop workload: this node will issue `spec.requests_per_node`
    /// requests, the first at time 0 and each subsequent one as soon as the previous
    /// completes (plus the local service time).
    pub fn enable_closed_loop(&mut self, spec: &ClosedLoopSpec, total_nodes: usize) {
        assert!(
            spec.local_service_time > 0.0,
            "closed-loop workloads need a positive local service time \
             (otherwise a node would issue its whole budget in a single instant)"
        );
        self.closed_loop = Some(ClosedLoopState {
            remaining: spec.requests_per_node,
            next_seq: 0,
            total_nodes: total_nodes as u64,
        });
        self.service = ServiceQueue::new(spec.local_service_time);
    }

    /// Current link pointer of the default object (`me` when this node is its sink).
    pub fn link(&self) -> NodeId {
        self.link_for(ObjectId::DEFAULT)
    }

    /// Current link pointer for `obj` (`me` when this node is that object's sink).
    pub fn link_for(&self, obj: ObjectId) -> NodeId {
        self.object(obj).link
    }

    /// True if this node is currently the default object's sink (`link(v) = v`).
    pub fn is_sink(&self) -> bool {
        self.is_sink_for(ObjectId::DEFAULT)
    }

    /// True if this node is currently the sink of `obj` (`link_o(v) = v`).
    pub fn is_sink_for(&self, obj: ObjectId) -> bool {
        self.object(obj).link == self.me
    }

    /// `id(v)` of the default object: the last request issued here (`None` = ⊥).
    pub fn last_request(&self) -> Option<RequestId> {
        self.last_request_for(ObjectId::DEFAULT)
    }

    /// `id_o(v)`: the last request for `obj` issued here (`None` = ⊥).
    pub fn last_request_for(&self, obj: ObjectId) -> Option<RequestId> {
        self.object(obj).last_id
    }

    /// Successor notifications recorded at this node.
    pub fn records(&self) -> &[OrderRecord] {
        &self.records
    }

    /// Requests issued by this node: `(request, object, issue time)`.
    pub fn issued(&self) -> &[(RequestId, ObjectId, SimTime)] {
        &self.issued
    }

    /// Completions of this node's own requests (only tracked when acks are enabled
    /// or the request completed locally).
    pub fn own_completions(&self) -> &[(RequestId, SimTime)] {
        &self.own_completions
    }

    /// Inter-processor `queue()` messages sent by this node.
    pub fn queue_hops(&self) -> u64 {
        self.queue_hops
    }

    /// The first protocol violation this node observed, if any (the violating
    /// message was dropped, not processed). The harness turns this into a typed
    /// [`crate::run::RunError::ProtocolViolation`] instead of aborting.
    pub fn protocol_violation(&self) -> Option<&str> {
        self.violation.as_deref()
    }

    /// The recovery epoch this node has reached (0 in fault-free runs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// This node's own requests still awaiting completion.
    pub fn pending(&self) -> impl Iterator<Item = (ObjectId, RequestId)> + '_ {
        self.pending.iter().copied()
    }

    /// Stale-epoch messages dropped at this node.
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops
    }

    /// Duplicate cross-epoch completion notifications suppressed (first one wins).
    pub fn duplicate_grants(&self) -> u64 {
        self.duplicate_grants
    }

    /// The actual protocol logic, invoked once the service queue releases a work item.
    fn process(&mut self, ctx: &mut Context<ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        // Sync a sim-mode recorder to the simulation clock before any event from
        // this dispatch; compiles to nothing under `NoProbe`.
        self.probe.record(ProbeEvent::Tick {
            units: ctx.now().as_units_f64(),
        });
        match msg {
            ProtoMsg::Issue { req, obj } => self.handle_issue(ctx, req, obj),
            ProtoMsg::Queue {
                req,
                obj,
                origin,
                epoch,
            } => self.handle_queue(ctx, from, req, obj, origin, epoch),
            ProtoMsg::Found {
                req,
                obj,
                pred,
                epoch,
            } => self.handle_found(ctx, req, obj, pred, epoch),
            ProtoMsg::Epoch { epoch } => {
                if epoch > self.epoch {
                    self.apply_epoch(ctx, epoch);
                }
            }
            other => {
                // A non-arrow message is a protocol bug; record it (first one wins)
                // and drop the message rather than tearing the whole process down.
                self.violation.get_or_insert_with(|| {
                    format!("arrow node received non-arrow message {other:?}")
                });
            }
        }
    }

    /// Epoch guard shared by the in-band message handlers: drop stale-epoch traffic
    /// (returns `false`), fast-forward when the sender is ahead (a restarted node
    /// can miss detection signals and learn the current epoch from live traffic).
    fn admit_epoch(&mut self, ctx: &mut Context<ProtoMsg>, obj: ObjectId, epoch: u64) -> bool {
        if epoch < self.epoch {
            self.stale_drops += 1;
            self.probe.record(ProbeEvent::StaleDrop { obj: obj.0 });
            return false;
        }
        if epoch > self.epoch {
            self.apply_epoch(ctx, epoch);
        }
        true
    }

    /// Advance to recovery epoch `epoch`: reset every object's link pointer to the
    /// initial tree orientation (the initial root becomes the sink again, holding
    /// the regenerated virtual request `r0`), then re-issue every still-pending own
    /// request under its original id.
    fn apply_epoch(&mut self, ctx: &mut Context<ProtoMsg>, epoch: u64) {
        self.epoch = epoch;
        self.probe.record(ProbeEvent::EpochAdopted { epoch });
        let me = self.me;
        for (state, &initial) in self.objects.iter_mut().zip(&self.initial_links) {
            state.link = initial;
            state.last_id = if initial == me {
                Some(RequestId::ROOT)
            } else {
                None
            };
        }
        for (obj, req) in self.pending.clone() {
            self.issue_inner(ctx, req, obj);
        }
    }

    /// Node `v` issues request `a` for object `o` (paper, Section 2):
    /// `id_o(v) ← a`; send `queue(a, o)` to `link_o(v)`; `link_o(v) ← v`.
    fn handle_issue(&mut self, ctx: &mut Context<ProtoMsg>, req: RequestId, obj: ObjectId) {
        assert!(!req.is_root(), "cannot issue the virtual root request");
        self.issued.push((req, obj, ctx.now()));
        self.pending.insert((obj, req));
        self.probe.record(ProbeEvent::RequestIssued {
            obj: obj.0,
            req: req.0,
            origin: self.me,
        });
        self.issue_inner(ctx, req, obj);
    }

    /// The issue state transition, shared by fresh issues and post-bump re-issues.
    fn issue_inner(&mut self, ctx: &mut Context<ProtoMsg>, req: RequestId, obj: ObjectId) {
        let me = self.me;
        let epoch = self.epoch;
        let state = self.object_mut(obj);
        let previous = state.last_id;
        state.last_id = Some(req);
        if state.link == me {
            // v is the sink: the request is queued behind id_o(v) without any message.
            let pred = previous.expect(
                "a sink always holds an id: either the virtual root request or \
                 a request it issued earlier",
            );
            self.complete_queuing(ctx, req, obj, pred, me);
        } else {
            let target = state.link;
            state.link = me;
            self.queue_hops += 1;
            self.probe.record(ProbeEvent::QueueSent {
                obj: obj.0,
                req: req.0,
                origin: me,
                to: target,
            });
            ctx.send(
                target,
                ProtoMsg::Queue {
                    req,
                    obj,
                    origin: me,
                    epoch,
                },
            );
        }
    }

    /// Node `u` receives `queue(a, o)` from `w`: flip `link_o(u) ← w`; forward to the
    /// old link target unless `u` was `o`'s sink, in which case `a` is queued behind
    /// `id_o(u)`.
    fn handle_queue(
        &mut self,
        ctx: &mut Context<ProtoMsg>,
        from: NodeId,
        req: RequestId,
        obj: ObjectId,
        origin: NodeId,
        epoch: u64,
    ) {
        if !self.admit_epoch(ctx, obj, epoch) {
            return;
        }
        self.probe.record(ProbeEvent::QueueReceived {
            obj: obj.0,
            req: req.0,
            origin,
            from,
        });
        let me = self.me;
        let epoch = self.epoch;
        let state = self.object_mut(obj);
        let old_link = state.link;
        state.link = from;
        if old_link == me {
            // This node was the sink: req is queued behind id_o(u).
            let pred = state.last_id.expect(
                "a sink always holds an id: either the virtual root request or \
                 a request it issued earlier",
            );
            self.complete_queuing(ctx, req, obj, pred, origin);
        } else {
            self.queue_hops += 1;
            self.probe.record(ProbeEvent::QueueSent {
                obj: obj.0,
                req: req.0,
                origin,
                to: old_link,
            });
            ctx.send(
                old_link,
                ProtoMsg::Queue {
                    req,
                    obj,
                    origin,
                    epoch,
                },
            );
        }
    }

    /// The queuing of `req` behind `pred` completed at this node; record it, notify the
    /// requester if acks are on, and feed the closed-loop workload.
    fn complete_queuing(
        &mut self,
        ctx: &mut Context<ProtoMsg>,
        req: RequestId,
        obj: ObjectId,
        pred: RequestId,
        origin: NodeId,
    ) {
        self.probe.record(ProbeEvent::QueuedBehind {
            obj: obj.0,
            req: req.0,
            pred: pred.0,
            origin,
        });
        self.records.push(OrderRecord {
            predecessor: pred,
            successor: req,
            obj,
            at_node: self.me,
            informed_at: ctx.now(),
            epoch: self.epoch,
        });
        ctx.record_completion(req.0);
        if origin == self.me {
            // The requester is local: its request completed right here.
            self.note_own_completion(ctx, req, obj);
        } else if self.send_ack {
            let found = ProtoMsg::Found {
                req,
                obj,
                pred,
                epoch: self.epoch,
            };
            match &self.distances {
                // With a graph metric available, the ack pays d_G(me, origin): the
                // notification travels over the shortest graph path, not over the
                // (possibly heavier) single link joining the pair.
                Some(dm) => ctx.send_direct(
                    origin,
                    found,
                    SimDuration::from_units_f64(dm.dist(self.me, origin)),
                ),
                None => ctx.send(origin, found),
            }
        }
    }

    fn handle_found(
        &mut self,
        ctx: &mut Context<ProtoMsg>,
        req: RequestId,
        obj: ObjectId,
        _pred: RequestId,
        epoch: u64,
    ) {
        if !self.admit_epoch(ctx, obj, epoch) {
            return;
        }
        self.note_own_completion(ctx, req, obj);
    }

    /// One of this node's own requests completed; in closed-loop mode, issue the next.
    fn note_own_completion(&mut self, ctx: &mut Context<ProtoMsg>, req: RequestId, obj: ObjectId) {
        self.pending.remove(&(obj, req));
        if !self.completed.insert(req) {
            // A request can complete once per epoch it was re-issued in; only the
            // first notification counts (and feeds the closed loop).
            self.duplicate_grants += 1;
            return;
        }
        self.probe.record(ProbeEvent::Granted {
            obj: obj.0,
            req: req.0,
        });
        self.own_completions.push((req, ctx.now()));
        if let Some(cl) = &mut self.closed_loop {
            if cl.remaining > 0 {
                cl.remaining -= 1;
                if cl.remaining > 0 {
                    let next = cl.next_request_id(self.me);
                    // Route the next issue through the service queue so it pays the
                    // local service time before being processed. Closed-loop
                    // workloads drive the default object only.
                    let issue = ProtoMsg::Issue {
                        req: next,
                        obj: ObjectId::DEFAULT,
                    };
                    if let Some((f, m)) = self.service.offer(ctx, (self.me, issue)) {
                        self.process(ctx, f, m);
                    }
                }
            }
        }
    }
}

impl<P: Probe> Process<ProtoMsg> for ArrowNode<P> {
    fn on_start(&mut self, ctx: &mut Context<ProtoMsg>) {
        // Closed-loop mode: issue the first request at time zero.
        if let Some(cl) = &mut self.closed_loop {
            if cl.remaining > 0 {
                let first = cl.next_request_id(self.me);
                let item: WorkItem = (
                    self.me,
                    ProtoMsg::Issue {
                        req: first,
                        obj: ObjectId::DEFAULT,
                    },
                );
                if let Some((f, m)) = self.service.offer(ctx, item) {
                    self.process(ctx, f, m);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        if let Some((f, m)) = self.service.offer(ctx, (from, msg)) {
            self.process(ctx, f, m);
        }
    }

    fn on_external(&mut self, ctx: &mut Context<ProtoMsg>, input: ProtoMsg) {
        let me = self.me;
        if let Some((f, m)) = self.service.offer(ctx, (me, input)) {
            self.process(ctx, f, m);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<ProtoMsg>, tag: u64) {
        if tag == SERVICE_TIMER_TAG {
            if let Some((f, m)) = self.service.on_timer(ctx) {
                self.process(ctx, f, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{SimConfig, SimTime, Simulator};

    fn issue(i: u64) -> ProtoMsg {
        ProtoMsg::Issue {
            req: RequestId(i),
            obj: ObjectId::DEFAULT,
        }
    }

    /// Build arrow nodes for a path 0 - 1 - 2 - 3 rooted at node 0
    /// (all links initially point towards 0).
    fn path_nodes(n: usize, root: usize, ack: bool) -> Vec<ArrowNode> {
        (0..n)
            .map(|v| {
                let link = if v == root {
                    v
                } else if v > root {
                    v - 1
                } else {
                    v + 1
                };
                ArrowNode::new(v, link, ack, 0.0)
            })
            .collect()
    }

    #[test]
    fn initial_root_is_sink_with_virtual_request() {
        let nodes = path_nodes(4, 0, false);
        assert!(nodes[0].is_sink());
        assert_eq!(nodes[0].last_request(), Some(RequestId::ROOT));
        assert!(!nodes[1].is_sink());
        assert_eq!(nodes[1].last_request(), None);
        assert_eq!(nodes[1].link(), 0);
    }

    #[test]
    fn single_remote_request_travels_to_root_and_reverses_path() {
        let mut sim = Simulator::new(path_nodes(4, 0, false), SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 3, issue(1));
        sim.run();
        // The request from node 3 is ordered behind the virtual root request at node 0.
        let recs = sim.node(0).records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].predecessor, RequestId::ROOT);
        assert_eq!(recs[0].successor, RequestId(1));
        assert_eq!(recs[0].informed_at, SimTime::from_units(3));
        // All pointers now lead to node 3 (the new tail).
        assert_eq!(sim.node(0).link(), 1);
        assert_eq!(sim.node(1).link(), 2);
        assert_eq!(sim.node(2).link(), 3);
        assert!(sim.node(3).is_sink());
        // 3 inter-processor queue hops.
        let hops: u64 = (0..4).map(|v| sim.node(v).queue_hops()).sum();
        assert_eq!(hops, 3);
    }

    #[test]
    fn local_request_at_root_completes_without_messages() {
        let mut sim = Simulator::new(path_nodes(3, 0, false), SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 0, issue(1));
        sim.run();
        assert_eq!(sim.stats().messages_delivered, 0);
        let recs = sim.node(0).records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].predecessor, RequestId::ROOT);
        // The root remains the sink and its id is now the new request.
        assert!(sim.node(0).is_sink());
        assert_eq!(sim.node(0).last_request(), Some(RequestId(1)));
        assert_eq!(sim.node(0).own_completions().len(), 1);
    }

    #[test]
    fn two_sequential_requests_chain_correctly() {
        let mut sim = Simulator::new(path_nodes(4, 0, false), SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 3, issue(1));
        sim.schedule_external(SimTime::from_units(100), 1, issue(2));
        sim.run();
        // Request 1 behind root (recorded at node 0), request 2 behind request 1
        // (recorded at node 3, which holds request 1).
        assert_eq!(sim.node(0).records().len(), 1);
        let rec3 = sim.node(3).records();
        assert_eq!(rec3.len(), 1);
        assert_eq!(rec3[0].predecessor, RequestId(1));
        assert_eq!(rec3[0].successor, RequestId(2));
        // d_T(1, 3) = 2, issued at t=100 => informed at t=102.
        assert_eq!(rec3[0].informed_at, SimTime::from_units(102));
    }

    #[test]
    fn concurrent_requests_are_all_queued_exactly_once() {
        let n = 8;
        // Path 0-1-...-7 rooted at 0.
        let mut sim = Simulator::new(path_nodes(n, 0, false), SimConfig::synchronous());
        for v in 1..n {
            sim.schedule_external(SimTime::ZERO, v, issue(v as u64));
        }
        sim.run();
        let mut successors: Vec<RequestId> = (0..n)
            .flat_map(|v| sim.node(v).records().iter().map(|r| r.successor))
            .collect();
        successors.sort();
        successors.dedup();
        assert_eq!(successors.len(), n - 1, "every request queued exactly once");
        // Exactly one node is the final sink.
        let sinks = (0..n).filter(|&v| sim.node(v).is_sink()).count();
        assert_eq!(sinks, 1);
    }

    #[test]
    fn per_object_arrow_state_is_independent() {
        // Two objects on a path 0 - 1 - 2 - 3, both rooted at node 0. A request for
        // object 1 must flip only object 1's pointers.
        let nodes: Vec<ArrowNode> = (0..4)
            .map(|v| {
                let link = if v == 0 { v } else { v - 1 };
                ArrowNode::new_multi(v, &[link, link], false, 0.0)
            })
            .collect();
        let mut sim = Simulator::new(nodes, SimConfig::synchronous());
        sim.schedule_external(
            SimTime::ZERO,
            3,
            ProtoMsg::Issue {
                req: RequestId(1),
                obj: ObjectId(1),
            },
        );
        sim.run();
        // Object 1's pointers now lead to node 3; object 0's still lead to node 0.
        assert!(sim.node(3).is_sink_for(ObjectId(1)));
        assert!(!sim.node(3).is_sink_for(ObjectId(0)));
        assert!(sim.node(0).is_sink_for(ObjectId(0)));
        assert_eq!(sim.node(0).link_for(ObjectId(1)), 1);
        // The record belongs to object 1.
        let recs = sim.node(0).records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].obj, ObjectId(1));
        assert_eq!(recs[0].predecessor, RequestId::ROOT);
    }

    #[test]
    fn concurrent_requests_for_different_objects_do_not_interfere() {
        // Simultaneous requests for K distinct objects each complete against their
        // own virtual root request — no cross-object queuing.
        let k = 4;
        let n = 6;
        let links: Vec<Vec<NodeId>> = (0..n)
            .map(|v| (0..k).map(|_| if v == 0 { 0 } else { v - 1 }).collect())
            .collect();
        let nodes: Vec<ArrowNode> = (0..n)
            .map(|v| ArrowNode::new_multi(v, &links[v], false, 0.0))
            .collect();
        let mut sim = Simulator::new(nodes, SimConfig::synchronous());
        for o in 0..k {
            sim.schedule_external(
                SimTime::ZERO,
                n - 1 - o,
                ProtoMsg::Issue {
                    req: RequestId(1 + o as u64),
                    obj: ObjectId(o as u32),
                },
            );
        }
        sim.run();
        let recs: Vec<OrderRecord> = (0..n)
            .flat_map(|v| sim.node(v).records().iter().copied())
            .collect();
        assert_eq!(recs.len(), k);
        for rec in &recs {
            // Every request queues directly behind its own object's root request.
            assert_eq!(rec.predecessor, RequestId::ROOT, "record {rec:?}");
        }
        let mut objs: Vec<ObjectId> = recs.iter().map(|r| r.obj).collect();
        objs.sort();
        objs.dedup();
        assert_eq!(objs.len(), k, "one completion per object");
    }

    #[test]
    #[should_panic(expected = "does not serve object")]
    fn request_for_unknown_object_panics() {
        let mut node = ArrowNode::new(0, 0, false, 0.0);
        let mut ctx = Context::new(0, SimTime::ZERO);
        node.on_external(
            &mut ctx,
            ProtoMsg::Issue {
                req: RequestId(1),
                obj: ObjectId(3),
            },
        );
    }

    #[test]
    fn ack_reaches_the_requester() {
        let mut sim = Simulator::new(path_nodes(4, 0, true), SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 2, issue(1));
        sim.run();
        let completions = sim.node(2).own_completions();
        assert_eq!(completions.len(), 1);
        // 2 hops to reach the root plus 1 hop (direct) back.
        assert_eq!(completions[0].1, SimTime::from_units(3));
    }

    #[test]
    fn closed_loop_issues_the_configured_number_of_requests() {
        let spec = ClosedLoopSpec {
            requests_per_node: 5,
            local_service_time: 0.1,
        };
        let mut nodes = path_nodes(3, 0, true);
        for node in &mut nodes {
            node.enable_closed_loop(&spec, 3);
        }
        let mut sim = Simulator::new(nodes, SimConfig::synchronous());
        sim.run();
        let total_issued: usize = (0..3).map(|v| sim.node(v).issued().len()).sum();
        assert_eq!(total_issued, 15);
        let total_recorded: usize = (0..3).map(|v| sim.node(v).records().len()).sum();
        assert_eq!(total_recorded, 15);
        // Ids are globally unique.
        let mut ids: Vec<u64> = (0..3)
            .flat_map(|v| sim.node(v).issued().iter().map(|(r, _, _)| r.0))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15);
    }

    #[test]
    #[should_panic(expected = "positive local service time")]
    fn closed_loop_requires_positive_service_time() {
        let mut node = ArrowNode::new(0, 0, true, 0.0);
        node.enable_closed_loop(
            &ClosedLoopSpec {
                requests_per_node: 10,
                local_service_time: 0.0,
            },
            1,
        );
    }

    #[test]
    fn central_message_is_recorded_as_violation_not_processed() {
        let mut node = ArrowNode::new(0, 0, false, 0.0);
        let mut ctx = Context::new(0, SimTime::ZERO);
        assert!(node.protocol_violation().is_none());
        node.on_message(
            &mut ctx,
            1,
            ProtoMsg::CentralEnqueue {
                req: RequestId(1),
                obj: ObjectId::DEFAULT,
                origin: 1,
            },
        );
        let violation = node.protocol_violation().expect("violation recorded");
        assert!(violation.contains("non-arrow message"), "{violation}");
        // The violating message was dropped: no record, no state change.
        assert!(node.records().is_empty());
        assert!(node.is_sink());
        // A second violation does not overwrite the first.
        node.on_message(
            &mut ctx,
            1,
            ProtoMsg::CentralReply {
                req: RequestId(2),
                obj: ObjectId::DEFAULT,
                pred: RequestId(1),
            },
        );
        assert!(node
            .protocol_violation()
            .unwrap()
            .contains("CentralEnqueue"));
    }
}
