//! The centralized (home-based) queuing protocol — the baseline of Section 5.
//!
//! "A globally known central node always stored the current tail of the total order.
//! Every queuing request was completed using only two messages, one to the central
//! node, and one back." The central node is a serial bottleneck: it must process one
//! message per request regardless of where requests originate, which is why its total
//! latency grows linearly with the number of processors in Figure 10 while the arrow
//! protocol's stays nearly flat.

use crate::order::OrderRecord;
use crate::protocol::{ProtoMsg, ServiceQueue, WorkItem, SERVICE_TIMER_TAG};
use crate::request::{ObjectId, RequestId};
use crate::workload::ClosedLoopSpec;
use desim::{Context, Process, SimTime};
use netgraph::NodeId;
use std::collections::HashMap;

/// Per-node state of the centralized protocol.
///
/// Every node knows the identity of the central node; the central node additionally
/// stores the current tail of the queue.
#[derive(Debug)]
pub struct CentralizedNode {
    me: NodeId,
    central: NodeId,
    /// Per-object tail of the queue; only meaningful at the central node. Objects
    /// never seen before implicitly have the virtual root request as their tail.
    tails: HashMap<ObjectId, RequestId>,
    service: ServiceQueue,
    closed_loop: Option<ClosedLoopState>,
    records: Vec<OrderRecord>,
    issued: Vec<(RequestId, ObjectId, SimTime)>,
    own_completions: Vec<(RequestId, SimTime)>,
    /// Messages this node sent to a different node.
    remote_messages: u64,
    /// First protocol violation observed (e.g. an arrow message): dropped and
    /// described here instead of aborting, so the harness can report it as a typed
    /// [`crate::run::RunError`].
    violation: Option<String>,
}

#[derive(Debug)]
struct ClosedLoopState {
    remaining: u64,
    next_seq: u64,
    total_nodes: u64,
}

impl ClosedLoopState {
    fn next_request_id(&mut self, node: NodeId) -> RequestId {
        let id = 1 + node as u64 + self.next_seq * self.total_nodes;
        self.next_seq += 1;
        RequestId(id)
    }
}

impl CentralizedNode {
    /// Create the automaton for node `me` with the given central node.
    pub fn new(me: NodeId, central: NodeId, service_time: f64) -> Self {
        CentralizedNode {
            me,
            central,
            tails: HashMap::new(),
            service: ServiceQueue::new(service_time),
            closed_loop: None,
            records: Vec::new(),
            issued: Vec::new(),
            own_completions: Vec::new(),
            remote_messages: 0,
            violation: None,
        }
    }

    /// Enable the closed-loop workload (see [`ClosedLoopSpec`]).
    pub fn enable_closed_loop(&mut self, spec: &ClosedLoopSpec, total_nodes: usize) {
        assert!(
            spec.local_service_time > 0.0,
            "closed-loop workloads need a positive local service time"
        );
        self.closed_loop = Some(ClosedLoopState {
            remaining: spec.requests_per_node,
            next_seq: 0,
            total_nodes: total_nodes as u64,
        });
        self.service = ServiceQueue::new(spec.local_service_time);
    }

    /// Successor notifications recorded at this node (non-empty only at the center).
    pub fn records(&self) -> &[OrderRecord] {
        &self.records
    }

    /// Requests issued by this node: `(request, object, issue time)`.
    pub fn issued(&self) -> &[(RequestId, ObjectId, SimTime)] {
        &self.issued
    }

    /// Completions (reply received) of this node's own requests.
    pub fn own_completions(&self) -> &[(RequestId, SimTime)] {
        &self.own_completions
    }

    /// Messages sent to other nodes by this node.
    pub fn remote_messages(&self) -> u64 {
        self.remote_messages
    }

    /// True if this node is the central node.
    pub fn is_central(&self) -> bool {
        self.me == self.central
    }

    /// The first protocol violation this node observed, if any (the violating
    /// message was dropped, not processed). The harness turns this into a typed
    /// [`crate::run::RunError::ProtocolViolation`] instead of aborting.
    pub fn protocol_violation(&self) -> Option<&str> {
        self.violation.as_deref()
    }

    fn process(&mut self, ctx: &mut Context<ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Issue { req, obj } => self.handle_issue(ctx, req, obj),
            ProtoMsg::CentralEnqueue { req, obj, origin } => {
                self.handle_enqueue(ctx, req, obj, origin)
            }
            ProtoMsg::CentralReply { req, pred, .. } => self.handle_reply(ctx, from, req, pred),
            other => {
                // An out-of-protocol message is a bug; record it (first one wins)
                // and drop the message rather than tearing the whole process down.
                self.violation.get_or_insert_with(|| {
                    format!("centralized node received unexpected message {other:?}")
                });
            }
        }
    }

    fn handle_issue(&mut self, ctx: &mut Context<ProtoMsg>, req: RequestId, obj: ObjectId) {
        assert!(!req.is_root(), "cannot issue the virtual root request");
        self.issued.push((req, obj, ctx.now()));
        if self.is_central() {
            // Local request: enqueue directly.
            self.handle_enqueue(ctx, req, obj, self.me);
        } else {
            self.remote_messages += 1;
            ctx.send(
                self.central,
                ProtoMsg::CentralEnqueue {
                    req,
                    obj,
                    origin: self.me,
                },
            );
        }
    }

    fn handle_enqueue(
        &mut self,
        ctx: &mut Context<ProtoMsg>,
        req: RequestId,
        obj: ObjectId,
        origin: NodeId,
    ) {
        assert!(self.is_central(), "only the central node enqueues requests");
        let tail = self.tails.entry(obj).or_insert(RequestId::ROOT);
        let pred = *tail;
        *tail = req;
        self.records.push(OrderRecord {
            predecessor: pred,
            successor: req,
            obj,
            at_node: self.me,
            informed_at: ctx.now(),
            epoch: 0,
        });
        ctx.record_completion(req.0);
        if origin == self.me {
            self.note_own_completion(ctx, req);
        } else {
            self.remote_messages += 1;
            ctx.send(origin, ProtoMsg::CentralReply { req, obj, pred });
        }
    }

    fn handle_reply(
        &mut self,
        ctx: &mut Context<ProtoMsg>,
        _from: NodeId,
        req: RequestId,
        _pred: RequestId,
    ) {
        self.note_own_completion(ctx, req);
    }

    fn note_own_completion(&mut self, ctx: &mut Context<ProtoMsg>, req: RequestId) {
        self.own_completions.push((req, ctx.now()));
        if let Some(cl) = &mut self.closed_loop {
            if cl.remaining > 0 {
                cl.remaining -= 1;
                if cl.remaining > 0 {
                    let next = cl.next_request_id(self.me);
                    let issue = ProtoMsg::Issue {
                        req: next,
                        obj: ObjectId::DEFAULT,
                    };
                    if let Some((f, m)) = self.service.offer(ctx, (self.me, issue)) {
                        self.process(ctx, f, m);
                    }
                }
            }
        }
    }
}

impl Process<ProtoMsg> for CentralizedNode {
    fn on_start(&mut self, ctx: &mut Context<ProtoMsg>) {
        if let Some(cl) = &mut self.closed_loop {
            if cl.remaining > 0 {
                let first = cl.next_request_id(self.me);
                let item: WorkItem = (
                    self.me,
                    ProtoMsg::Issue {
                        req: first,
                        obj: ObjectId::DEFAULT,
                    },
                );
                if let Some((f, m)) = self.service.offer(ctx, item) {
                    self.process(ctx, f, m);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        if let Some((f, m)) = self.service.offer(ctx, (from, msg)) {
            self.process(ctx, f, m);
        }
    }

    fn on_external(&mut self, ctx: &mut Context<ProtoMsg>, input: ProtoMsg) {
        let me = self.me;
        if let Some((f, m)) = self.service.offer(ctx, (me, input)) {
            self.process(ctx, f, m);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<ProtoMsg>, tag: u64) {
        if tag == SERVICE_TIMER_TAG {
            if let Some((f, m)) = self.service.on_timer(ctx) {
                self.process(ctx, f, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{SimConfig, SimTime, Simulator};

    fn nodes(n: usize, central: usize, service: f64) -> Vec<CentralizedNode> {
        (0..n)
            .map(|v| CentralizedNode::new(v, central, service))
            .collect()
    }

    fn issue(i: u64) -> ProtoMsg {
        ProtoMsg::Issue {
            req: RequestId(i),
            obj: ObjectId::DEFAULT,
        }
    }

    #[test]
    fn remote_request_takes_two_messages() {
        let mut sim = Simulator::new(nodes(4, 0, 0.0), SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 2, issue(1));
        sim.run();
        assert_eq!(sim.stats().messages_delivered, 2);
        let recs = sim.node(0).records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].predecessor, RequestId::ROOT);
        // Reply received one unit after the enqueue reached the center.
        assert_eq!(sim.node(2).own_completions()[0].1, SimTime::from_units(2));
    }

    #[test]
    fn local_request_at_center_is_free() {
        let mut sim = Simulator::new(nodes(3, 1, 0.0), SimConfig::synchronous());
        sim.schedule_external(SimTime::ZERO, 1, issue(1));
        sim.run();
        assert_eq!(sim.stats().messages_delivered, 0);
        assert_eq!(sim.node(1).records().len(), 1);
        assert_eq!(sim.node(1).own_completions().len(), 1);
    }

    #[test]
    fn center_orders_requests_in_arrival_order() {
        let mut sim = Simulator::new(nodes(5, 0, 0.0), SimConfig::synchronous());
        for v in 1..5 {
            sim.schedule_external(SimTime::ZERO, v, issue(v as u64));
        }
        sim.run();
        let recs = sim.node(0).records();
        assert_eq!(recs.len(), 4);
        // First record is behind the root; the chain is total.
        assert_eq!(recs[0].predecessor, RequestId::ROOT);
        for w in recs.windows(2) {
            assert_eq!(w[1].predecessor, w[0].successor);
        }
    }

    #[test]
    fn service_time_serialises_the_center() {
        // 4 remote requests arrive simultaneously; with a service time of 1 unit the
        // center releases replies 1 unit apart.
        let mut sim = Simulator::new(nodes(5, 0, 1.0), SimConfig::synchronous());
        for v in 1..5 {
            sim.schedule_external(SimTime::ZERO, v, issue(v as u64));
        }
        let outcome = sim.run();
        // Last enqueue processed at 1 + 4 (arrival at 1, four service slots), reply +1.
        assert!(outcome.final_time >= SimTime::from_units(5));
        let recs = sim.node(0).records();
        assert_eq!(recs.len(), 4);
        let mut times: Vec<f64> = recs.iter().map(|r| r.informed_at.as_units_f64()).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in times.windows(2) {
            assert!(
                w[1] - w[0] >= 1.0 - 1e-9,
                "center served two requests within one service time"
            );
        }
    }

    #[test]
    fn center_keeps_independent_tails_per_object() {
        let mut sim = Simulator::new(nodes(3, 0, 0.0), SimConfig::synchronous());
        sim.schedule_external(
            SimTime::ZERO,
            1,
            ProtoMsg::Issue {
                req: RequestId(1),
                obj: ObjectId(0),
            },
        );
        sim.schedule_external(
            SimTime::ZERO,
            2,
            ProtoMsg::Issue {
                req: RequestId(2),
                obj: ObjectId(1),
            },
        );
        sim.run();
        let recs = sim.node(0).records();
        assert_eq!(recs.len(), 2);
        // Both requests queue behind their own object's virtual root request.
        for rec in recs {
            assert_eq!(rec.predecessor, RequestId::ROOT, "record {rec:?}");
        }
        assert_ne!(recs[0].obj, recs[1].obj);
    }

    #[test]
    fn closed_loop_issues_all_requests() {
        let spec = ClosedLoopSpec {
            requests_per_node: 3,
            local_service_time: 0.2,
        };
        let mut ns = nodes(3, 0, 0.2);
        for n in &mut ns {
            n.enable_closed_loop(&spec, 3);
        }
        let mut sim = Simulator::new(ns, SimConfig::synchronous());
        sim.run();
        let total_issued: usize = (0..3).map(|v| sim.node(v).issued().len()).sum();
        assert_eq!(total_issued, 9);
        assert_eq!(sim.node(0).records().len(), 9);
    }

    #[test]
    fn arrow_message_is_recorded_as_violation_not_processed() {
        let mut node = CentralizedNode::new(0, 0, 0.0);
        let mut ctx = Context::new(0, SimTime::ZERO);
        assert!(node.protocol_violation().is_none());
        node.on_message(
            &mut ctx,
            1,
            ProtoMsg::Queue {
                req: RequestId(1),
                obj: ObjectId::DEFAULT,
                origin: 1,
                epoch: 0,
            },
        );
        let violation = node.protocol_violation().expect("violation recorded");
        assert!(violation.contains("unexpected message"), "{violation}");
        // The violating message was dropped: nothing got enqueued.
        assert!(node.records().is_empty());
    }
}
