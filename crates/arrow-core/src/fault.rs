//! Fault schedules shared by all three execution tiers.
//!
//! A [`FaultSchedule`] is a seeded, tick-indexed list of [`FaultAction`]s — node
//! crashes/restarts and link drops/restores — that the simulator, the thread runtime
//! and the socket runtime all consume, each mapping the abstract tick to its own
//! clock ([`FaultSchedule::events_for_sim`] for the simulator; the live tiers pace
//! ticks on the wall clock). Keeping the schedule tier-agnostic is what lets the
//! conformance harness replay the *same* churn scenario on all tiers and compare
//! outcomes.
//!
//! # Recovery model
//!
//! The directory recovers from every fault through **epoch bumps** anchored at the
//! tree root (which a valid schedule never crashes): each fault event is eventually
//! followed by a detection signal that advances the global epoch by one, resetting
//! every node's link pointers to the initial tree orientation, regenerating the
//! object tokens at the root, and re-issuing all still-pending requests under their
//! original request ids. Messages carry their sender's epoch; stale-epoch traffic
//! (including tokens held by restarted nodes) is rejected on receipt. The final
//! epoch therefore starts from a clean directory with only surviving requests in
//! flight, which is what the churn liveness invariant checks.
//!
//! A valid schedule is **terminally clean**: every crash is later restarted, every
//! dropped link is later restored, and the root is never crashed or partitioned
//! away. [`FaultSchedule::validate`] enforces this; [`FaultSchedule::generate`]
//! only produces such schedules.

use desim::{SimFault, SimRng, SimTime};
use netgraph::{NodeId, RootedTree};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// One fault primitive, applied to the running system at a schedule tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Kill a node: its event loop stops, its inbox/outbox are silenced, its
    /// volatile protocol state is lost. Never the tree root.
    CrashNode(NodeId),
    /// Bring a previously crashed node back with freshly reset protocol state; it
    /// re-attaches to the tree at the next epoch bump.
    RestartNode(NodeId),
    /// Sever the (undirected) link between two nodes: in-flight and future traffic
    /// on it is dropped in both directions.
    DropLink(NodeId, NodeId),
    /// Restore a previously dropped link.
    RestoreLink(NodeId, NodeId),
    /// Partition the spanning tree by cutting the edge between a node and its tree
    /// parent (lowered to [`FaultAction::DropLink`] once a tree is known). Never
    /// the root.
    PartitionTree(NodeId),
}

impl FaultAction {
    /// The undirected link this action targets, normalized `(min, max)`, if any.
    fn link(&self) -> Option<(NodeId, NodeId)> {
        match *self {
            FaultAction::DropLink(u, v) | FaultAction::RestoreLink(u, v) => {
                Some((u.min(v), u.max(v)))
            }
            _ => None,
        }
    }
}

/// A [`FaultAction`] scheduled at an abstract tick.
///
/// Ticks are dimensionless: the simulator reads tick `t` as `t` time units, the
/// live tiers pace ticks in wall-clock milliseconds. Only the relative order and
/// spacing matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Schedule tick at which the action fires.
    pub at: u64,
    /// What happens.
    pub action: FaultAction,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.action {
            FaultAction::CrashNode(v) => write!(f, "{} crash {v}", self.at),
            FaultAction::RestartNode(v) => write!(f, "{} restart {v}", self.at),
            FaultAction::DropLink(u, v) => write!(f, "{} drop {u} {v}", self.at),
            FaultAction::RestoreLink(u, v) => write!(f, "{} restore {u} {v}", self.at),
            FaultAction::PartitionTree(v) => write!(f, "{} partition {v}", self.at),
        }
    }
}

impl FromStr for FaultEvent {
    type Err = String;

    /// Parses the textual form produced by [`fmt::Display`]:
    /// `<at> crash|restart|partition <node>` or `<at> drop|restore <u> <v>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split_whitespace();
        let at: u64 = parts
            .next()
            .ok_or("empty fault event")?
            .parse()
            .map_err(|e| format!("bad fault tick: {e}"))?;
        let verb = parts.next().ok_or("fault event missing verb")?;
        let mut node = |what: &str| -> Result<NodeId, String> {
            parts
                .next()
                .ok_or_else(|| format!("fault event missing {what}"))?
                .parse()
                .map_err(|e| format!("bad fault {what}: {e}"))
        };
        let action = match verb {
            "crash" => FaultAction::CrashNode(node("node")?),
            "restart" => FaultAction::RestartNode(node("node")?),
            "partition" => FaultAction::PartitionTree(node("node")?),
            "drop" => FaultAction::DropLink(node("node u")?, node("node v")?),
            "restore" => FaultAction::RestoreLink(node("node u")?, node("node v")?),
            other => return Err(format!("unknown fault verb {other:?}")),
        };
        Ok(FaultEvent { at, action })
    }
}

/// A tick-ordered list of fault events injected into a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The events, sorted by tick (construction sorts them).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (a fault-free run).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Build a schedule from events, sorting them by tick (stable, so same-tick
    /// events keep their given order).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Number of fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the schedule injects no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The epoch the system converges to: every fault event is followed by one
    /// detection-driven epoch bump, so a run ends at epoch `len()` (0 = fault-free).
    pub fn final_epoch(&self) -> u64 {
        self.events.len() as u64
    }

    /// The schedule with every [`FaultAction::PartitionTree`] lowered to the
    /// concrete tree edge it cuts (`DropLink(v, parent(v))`).
    ///
    /// # Panics
    /// If a partitioned node is the tree root (it has no parent edge).
    pub fn lowered(&self, tree: &RootedTree) -> FaultSchedule {
        let events = self
            .events
            .iter()
            .map(|&e| match e.action {
                FaultAction::PartitionTree(v) => FaultEvent {
                    at: e.at,
                    action: FaultAction::DropLink(
                        v,
                        tree.parent(v).expect("cannot partition the tree root away"),
                    ),
                },
                _ => e,
            })
            .collect();
        FaultSchedule { events }
    }

    /// Check the schedule against a tree: nodes in range, root never crashed or
    /// partitioned, per-node crash/restart strictly alternating and ending
    /// restarted, per-link drop/restore strictly alternating and ending restored
    /// (so the terminal state is clean and the final epoch can drain).
    pub fn validate(&self, tree: &RootedTree) -> Result<(), String> {
        let n = tree.node_count();
        let root = tree.root();
        let in_range = |v: NodeId| -> Result<(), String> {
            if v < n {
                Ok(())
            } else {
                Err(format!("fault targets node {v} but the tree has {n} nodes"))
            }
        };
        if self.events.windows(2).any(|w| w[0].at > w[1].at) {
            return Err("fault events are not sorted by tick".into());
        }
        let mut down: HashMap<NodeId, bool> = HashMap::new();
        let mut dropped: HashMap<(NodeId, NodeId), bool> = HashMap::new();
        for ev in &self.events {
            match ev.action {
                FaultAction::CrashNode(v) => {
                    in_range(v)?;
                    if v == root {
                        return Err(format!("schedule crashes the tree root {root}"));
                    }
                    if std::mem::replace(down.entry(v).or_insert(false), true) {
                        return Err(format!("node {v} crashed twice without a restart"));
                    }
                }
                FaultAction::RestartNode(v) => {
                    in_range(v)?;
                    if !std::mem::replace(down.entry(v).or_insert(false), false) {
                        return Err(format!("node {v} restarted without a prior crash"));
                    }
                }
                FaultAction::PartitionTree(v) => {
                    in_range(v)?;
                    if v == root {
                        return Err(format!("schedule partitions the tree root {root}"));
                    }
                    // A partition is a drop of the parent edge: feed it into the
                    // same alternation history its paired restore will check.
                    let p = tree.parent(v).expect("non-root node has a parent");
                    let link = (v.min(p), v.max(p));
                    if std::mem::replace(dropped.entry(link).or_insert(false), true) {
                        return Err(format!("link {link:?} dropped twice without a restore"));
                    }
                }
                _ => {}
            }
            if let Some(link) = ev.action.link() {
                in_range(link.0)?;
                in_range(link.1)?;
                let state = dropped.entry(link).or_insert(false);
                match ev.action {
                    FaultAction::DropLink(..) => {
                        if std::mem::replace(state, true) {
                            return Err(format!("link {link:?} dropped twice without a restore"));
                        }
                    }
                    FaultAction::RestoreLink(..) => {
                        if !std::mem::replace(state, false) {
                            return Err(format!("link {link:?} restored without a prior drop"));
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
        if let Some((&v, _)) = down.iter().find(|(_, &d)| d) {
            return Err(format!(
                "node {v} is still crashed at the end of the schedule"
            ));
        }
        if let Some((&l, _)) = dropped.iter().find(|(_, &d)| d) {
            return Err(format!(
                "link {l:?} is still dropped at the end of the schedule"
            ));
        }
        Ok(())
    }

    /// Generate a seeded, always-valid schedule for the given tree: one to
    /// `max_episodes` fault episodes, each either a crash/restart of a random
    /// non-root node or a drop/restore of a random tree edge (sometimes expressed
    /// as a [`FaultAction::PartitionTree`]); episodes get disjoint tick windows per
    /// target so alternation always holds.
    ///
    /// Returns an empty schedule for a single-node tree (nothing to fault).
    pub fn generate(seed: u64, tree: &RootedTree, max_episodes: usize) -> FaultSchedule {
        let n = tree.node_count();
        if n < 2 || max_episodes == 0 {
            return FaultSchedule::none();
        }
        let mut rng = SimRng::new(seed ^ 0xFA17_5EED);
        let episodes = 1 + rng.index(max_episodes);
        // Non-root nodes, shuffled: distinct targets per episode keep per-node and
        // per-link histories trivially alternating.
        let mut targets: Vec<NodeId> = (0..n).filter(|&v| v != tree.root()).collect();
        rng.shuffle(&mut targets);
        let mut events = Vec::new();
        let mut tick = 2 + rng.uniform_u64(0, 2);
        for &v in targets.iter().take(episodes) {
            let hold = 2 + rng.uniform_u64(0, 3);
            let (start, end) = match rng.index(3) {
                0 => (FaultAction::CrashNode(v), FaultAction::RestartNode(v)),
                1 => {
                    let p = tree.parent(v).expect("non-root node has a parent");
                    (FaultAction::DropLink(v, p), FaultAction::RestoreLink(v, p))
                }
                _ => {
                    let p = tree.parent(v).expect("non-root node has a parent");
                    (
                        FaultAction::PartitionTree(v),
                        FaultAction::RestoreLink(v, p),
                    )
                }
            };
            events.push(FaultEvent {
                at: tick,
                action: start,
            });
            events.push(FaultEvent {
                at: tick + hold,
                action: end,
            });
            // The next episode may overlap this one's hold window (different target).
            tick += 1 + rng.uniform_u64(0, hold);
        }
        let schedule = FaultSchedule::new(events);
        debug_assert!(schedule.validate(tree).is_ok());
        schedule
    }

    /// Lower the schedule to simulator faults: tick `t` becomes `t` time units,
    /// crashes/restarts map to inbox/outbox silencing, link drops block the edge.
    pub fn events_for_sim(&self, tree: &RootedTree) -> Vec<(SimTime, SimFault)> {
        self.lowered(tree)
            .events
            .iter()
            .map(|&e| {
                let fault = match e.action {
                    FaultAction::CrashNode(v) => SimFault::Crash(v),
                    FaultAction::RestartNode(v) => SimFault::Restart(v),
                    FaultAction::DropLink(u, v) => SimFault::BlockLink(u, v),
                    FaultAction::RestoreLink(u, v) => SimFault::UnblockLink(u, v),
                    FaultAction::PartitionTree(_) => unreachable!("lowered above"),
                };
                (SimTime::from_units(e.at), fault)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    fn tree(n: usize) -> RootedTree {
        RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0)
    }

    fn ev(at: u64, action: FaultAction) -> FaultEvent {
        FaultEvent { at, action }
    }

    #[test]
    fn generated_schedules_are_valid_and_seed_deterministic() {
        let t = tree(9);
        for seed in 0..64 {
            let s = FaultSchedule::generate(seed, &t, 3);
            s.validate(&t)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(s, FaultSchedule::generate(seed, &t, 3));
            assert!(!s.is_empty());
        }
        assert_ne!(
            FaultSchedule::generate(1, &t, 3),
            FaultSchedule::generate(2, &t, 3)
        );
    }

    #[test]
    fn single_node_tree_generates_no_faults() {
        assert!(FaultSchedule::generate(7, &tree(1), 3).is_empty());
    }

    #[test]
    fn validation_rejects_root_crash_and_unbalanced_histories() {
        let t = tree(5);
        let root_crash = FaultSchedule::new(vec![
            ev(1, FaultAction::CrashNode(0)),
            ev(2, FaultAction::RestartNode(0)),
        ]);
        assert!(root_crash.validate(&t).unwrap_err().contains("root"));

        let unrestarted = FaultSchedule::new(vec![ev(1, FaultAction::CrashNode(3))]);
        assert!(unrestarted
            .validate(&t)
            .unwrap_err()
            .contains("still crashed"));

        let double_drop = FaultSchedule::new(vec![
            ev(1, FaultAction::DropLink(1, 0)),
            ev(2, FaultAction::DropLink(0, 1)),
        ]);
        assert!(double_drop.validate(&t).unwrap_err().contains("twice"));

        let stray_restart = FaultSchedule::new(vec![ev(1, FaultAction::RestartNode(2))]);
        assert!(stray_restart
            .validate(&t)
            .unwrap_err()
            .contains("without a prior crash"));
    }

    #[test]
    fn partition_lowers_to_the_parent_edge() {
        let t = tree(7);
        let s = FaultSchedule::new(vec![
            ev(1, FaultAction::PartitionTree(5)),
            ev(4, FaultAction::RestoreLink(5, t.parent(5).unwrap())),
        ]);
        s.validate(&t).expect("partition pairs with restore");
        let lowered = s.lowered(&t);
        assert_eq!(
            lowered.events[0].action,
            FaultAction::DropLink(5, t.parent(5).unwrap())
        );
        let sim = s.events_for_sim(&t);
        assert_eq!(sim.len(), 2);
        assert_eq!(sim[0].0, SimTime::from_units(1));
        assert!(matches!(sim[0].1, SimFault::BlockLink(..)));
    }

    #[test]
    fn fault_events_round_trip_through_text() {
        let t = tree(6);
        let s = FaultSchedule::generate(11, &t, 3);
        for e in &s.events {
            let text = e.to_string();
            let parsed: FaultEvent = text.parse().expect("round trip");
            assert_eq!(parsed, *e, "through {text:?}");
        }
        assert!("5 explode 3".parse::<FaultEvent>().is_err());
        assert!("notanumber crash 3".parse::<FaultEvent>().is_err());
        assert!("5 drop 1".parse::<FaultEvent>().is_err());
    }

    #[test]
    fn final_epoch_counts_events() {
        assert_eq!(FaultSchedule::none().final_epoch(), 0);
        let s = FaultSchedule::new(vec![
            ev(1, FaultAction::CrashNode(2)),
            ev(3, FaultAction::RestartNode(2)),
        ]);
        assert_eq!(s.final_epoch(), 2);
    }
}
