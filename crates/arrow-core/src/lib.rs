//! # arrow-core — the arrow distributed queuing protocol
//!
//! A faithful implementation of the arrow protocol (Raymond '89; Demmer–Herlihy '98)
//! as analysed in *"Dynamic Analysis of the Arrow Distributed Protocol"* (Herlihy,
//! Kuhn, Tirthapura, Wattenhofer), together with the centralized queuing baseline the
//! paper compares against, workload generators, and a harness that measures the
//! quantities the paper reports.
//!
//! ## What distributed queuing is
//!
//! Nodes of a message-passing network asynchronously request to join a total order
//! (a distributed queue). The protocol must inform the issuer of each request of the
//! identity of its *successor*. This primitive directly supports distributed mutual
//! exclusion (pass a token down the queue), distributed directories (move the object
//! down the queue) and totally ordered multicast.
//!
//! ## How arrow works
//!
//! A spanning tree `T` of the network is fixed in advance. Every node `v` keeps a
//! pointer `link(v)` to a tree neighbour (or to itself — then `v` is the *sink*),
//! initialised so that following pointers from anywhere leads to the root. To queue a
//! request, a node sends a `queue()` message along the pointers; every node the
//! message visits flips its pointer back towards the requester (*path reversal*).
//! When the message reaches a sink, the request has found its predecessor. Concurrent
//! requests chase each other's reversed paths and are ordered without any central
//! coordination.
//!
//! ## Multi-object directories
//!
//! One tree can serve any number of mobile objects (the Demmer–Herlihy directory
//! setting): every [`ObjectId`] gets its own independent link pointers and its own
//! queue at every node, sharing only the physical links. Single-object APIs are the
//! `K = 1` special case ([`ObjectId::DEFAULT`]) and work unchanged; multi-object
//! workloads name objects per request ([`RequestSchedule::from_object_pairs`],
//! [`workload::zipf_objects`]) and [`QueuingOutcome::orders`] carries one
//! independently validated order per object.
//!
//! ## Crate layout
//!
//! * [`request`] / [`workload`] — queuing requests (with their [`ObjectId`]),
//!   schedules, workload generators (incl. Zipf object popularity and migrating
//!   per-object hotspots).
//! * [`arrow`] — the arrow node automaton (runs on the [`desim`] simulator), one
//!   independent arrow state per object.
//! * [`centralized`] — the home-based baseline protocol (per-object queue tails).
//! * [`order`] — queuing orders, successor records, per-object validation, latency
//!   accounting.
//! * [`mod@run`] — the harness: run a protocol on `(graph, tree, workload)` and collect
//!   cost/hop statistics plus the per-object orders.
//! * [`live`] — a real-concurrency runtime (one OS thread per node, std mpsc
//!   channels) whose node threads multiplex the per-object automata and exclusion
//!   tokens, plus a [`live::DistributedLock`] built on the queue. Its protocol
//!   logic is the standalone [`live::ArrowCore`] state machine, also consumed by
//!   the socket tier (the `arrow-net` crate) so the two real-concurrency runtimes
//!   cannot drift.
//!
//! ## Quick example
//!
//! ```
//! use arrow_core::prelude::*;
//! use desim::SimTime;
//!
//! // The paper's experimental platform: complete graph, balanced binary tree.
//! let instance = Instance::complete_uniform(8, SpanningTreeKind::BalancedBinary);
//! // All eight nodes request simultaneously.
//! let nodes: Vec<usize> = (0..8).collect();
//! let schedule = workload::one_shot_burst(&nodes, SimTime::ZERO);
//! let outcome = run(
//!     &instance,
//!     &Workload::OpenLoop(schedule),
//!     &RunConfig::analysis(ProtocolKind::Arrow),
//! );
//! assert_eq!(outcome.order.len(), 8);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrow;
pub mod centralized;
pub mod driver;
pub mod fault;
pub mod live;
pub mod order;
pub mod protocol;
pub mod request;
pub mod run;
pub mod workload;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::driver::{Driver, SimDriver, ThreadDriver};
    pub use crate::fault::{FaultAction, FaultEvent, FaultSchedule};
    pub use crate::order::{validate_churn_records, ChurnOrderError, OrderRecord, QueuingOrder};
    pub use crate::protocol::{ProtoMsg, ProtocolKind};
    pub use crate::request::{ObjectId, Request, RequestId, RequestSchedule};
    pub use crate::run::{
        outcome_from_records, run, run_checked, run_schedule, run_schedule_checked,
        run_schedule_faulted, run_schedule_traced, ChurnOutcome, Instance, QueuingOutcome,
        RunConfig, RunError, SyncMode, FAULT_DETECTION_DELAY,
    };
    pub use crate::workload::{self, ClosedLoopSpec, Workload};
    pub use netgraph::spanning::SpanningTreeKind;
}

pub use prelude::*;
