//! Harness: run a queuing protocol on a `(graph, spanning tree, workload)` instance
//! and collect the quantities the paper reports.
//!
//! Two measurement modes matter:
//!
//! * **Analysis mode** ([`RunConfig::analysis`]) — no acknowledgements, no local
//!   service time; the cost is the total latency of Definition 3.3 (for each request,
//!   the time from its issue to the moment its predecessor's node learns who its
//!   successor is). This is what the competitive-ratio experiments use.
//! * **Experiment mode** ([`RunConfig::experiment`]) — reproduces Section 5: each
//!   request is acknowledged back to the requester, nodes pay a per-message local
//!   service time, and the workload is closed-loop. The reported quantities are the
//!   makespan (Figure 10) and the average inter-processor hops per request
//!   (Figure 11).

use crate::arrow::ArrowNode;
use crate::centralized::CentralizedNode;
use crate::fault::FaultSchedule;
use crate::order::{validate_churn_records, OrderRecord, QueuingOrder};
use crate::protocol::{ProtoMsg, ProtocolKind};
use crate::request::{ObjectId, Request, RequestId, RequestSchedule};
use crate::workload::{ClosedLoopSpec, Workload};
use desim::{LatencyModel, LocalOrder, SimConfig, SimDuration, SimTime, Simulator};
use netgraph::spanning::{build_spanning_tree, SpanningTreeKind};
use netgraph::{DistanceMatrix, Graph, NodeId, RootedTree, StretchReport};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// A problem instance: the communication graph and the pre-selected spanning tree.
///
/// The all-pairs graph distances and the stretch report are computed lazily and
/// cached, so a sweep that evaluates many runs (or many workloads) on one topology
/// pays for them once instead of once per run. The caches are shared by `clone()`
/// (the distance matrix sits behind an [`Arc`]) and are thread-safe, so one
/// `Instance` can back a whole parallel sweep.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The communication graph `G`. Private: the cached distance matrix and stretch
    /// report below are derived from it, so mutation after construction would make
    /// them silently stale — build a new `Instance` instead.
    graph: Graph,
    /// The pre-selected rooted spanning tree `T`; its root holds the initial queue tail.
    tree: RootedTree,
    /// Lazily computed all-pairs distances of `graph`.
    dm: OnceLock<Arc<DistanceMatrix>>,
    /// Lazily computed stretch report of `tree` relative to `graph`.
    stretch: OnceLock<StretchReport>,
}

impl Instance {
    /// Create an instance from a graph and a rooted spanning tree over the same nodes.
    ///
    /// # Panics
    /// If the node counts differ or a tree edge is not a graph edge.
    pub fn new(graph: Graph, tree: RootedTree) -> Self {
        assert_eq!(
            graph.node_count(),
            tree.node_count(),
            "graph and tree must have the same node set"
        );
        for v in 0..tree.node_count() {
            if let Some(p) = tree.parent(v) {
                assert!(
                    graph.has_edge(v, p),
                    "tree edge ({v},{p}) is not an edge of the graph"
                );
            }
        }
        Instance {
            graph,
            tree,
            dm: OnceLock::new(),
            stretch: OnceLock::new(),
        }
    }

    /// The platform of the paper's experiment: a complete graph with uniform unit
    /// latency and the requested spanning tree rooted at node 0.
    pub fn complete_uniform(n: usize, kind: SpanningTreeKind) -> Self {
        let graph = netgraph::generators::complete(n, 1.0);
        let tree = build_spanning_tree(&graph, 0, kind);
        Instance {
            graph,
            tree,
            dm: OnceLock::new(),
            stretch: OnceLock::new(),
        }
    }

    /// An instance whose communication graph *is* the tree (`G = T`, stretch 1), as in
    /// the lower-bound construction of Theorem 4.1. Takes the graph by value — the
    /// callers own it, so no clone is needed.
    pub fn tree_only(tree_graph: Graph, root: NodeId) -> Self {
        let tree = RootedTree::from_tree_graph(&tree_graph, root);
        Instance {
            graph: tree_graph,
            tree,
            dm: OnceLock::new(),
            stretch: OnceLock::new(),
        }
    }

    /// The communication graph `G`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The pre-selected rooted spanning tree `T`.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// All-pairs shortest-path distances of the communication graph, computed on
    /// first use and shared (cheaply clonable [`Arc`]) afterwards.
    pub fn distances(&self) -> Arc<DistanceMatrix> {
        Arc::clone(self.dm.get_or_init(|| DistanceMatrix::shared(&self.graph)))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Stretch/diameter report of the tree relative to the graph (computed once,
    /// cached; reuses the cached distance matrix).
    pub fn stretch_report(&self) -> StretchReport {
        *self.stretch.get_or_init(|| {
            netgraph::stretch_with_distances(&self.graph, &self.tree, &self.distances())
        })
    }
}

/// Synchrony model for a run (Sections 3.1 and 3.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncMode {
    /// Every message takes exactly the link weight (unit latency on unweighted graphs).
    Synchronous,
    /// Each message takes an adversarially random fraction of the link weight, with
    /// the worst case normalised to the link weight; simultaneous arrivals are
    /// processed in random order.
    Asynchronous,
}

/// Configuration of a protocol run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    /// Which protocol to run.
    pub protocol: ProtocolKind,
    /// Synchrony model.
    pub sync: SyncMode,
    /// PRNG seed (drives asynchronous delays and random local processing order).
    pub seed: u64,
    /// Send a `Found` acknowledgement back to each requester. Acks travel over the
    /// graph metric (`d_G(sink, requester)`, deterministic even in the asynchronous
    /// model — they are not part of the randomised protocol cost).
    pub ack_to_requester: bool,
    /// Per-message local service time in time units (0 = free local computation, the
    /// assumption of the analysis).
    pub local_service_time: f64,
    /// Lower bound on asynchronous latencies, as a fraction of the link weight
    /// (ignored in the synchronous model). Defaults to
    /// [`desim::SimConfig::DEFAULT_ASYNC_LO`].
    pub async_lo_factor: f64,
    /// Record a full message trace.
    pub trace: bool,
    /// How long a live-tier acquire may wait for its token before the driver fails
    /// the run with [`RunError::GrantTimeout`] (ignored by the simulator tiers,
    /// which have no wall clock). Defaults to [`RunConfig::DEFAULT_GRANT_TIMEOUT_MS`];
    /// fault sweeps lower it so a genuinely lost token fails fast.
    pub grant_timeout_ms: u64,
}

impl RunConfig {
    /// Default live-tier grant timeout: generous enough that a loaded fault-free
    /// run never trips it, short enough that a deadlocked sweep still terminates.
    pub const DEFAULT_GRANT_TIMEOUT_MS: u64 = 30_000;

    /// Analysis mode: the model of Section 3 (free local computation, no acks).
    pub fn analysis(protocol: ProtocolKind) -> Self {
        RunConfig {
            protocol,
            sync: SyncMode::Synchronous,
            seed: 0,
            ack_to_requester: false,
            local_service_time: 0.0,
            async_lo_factor: SimConfig::DEFAULT_ASYNC_LO,
            trace: false,
            grant_timeout_ms: RunConfig::DEFAULT_GRANT_TIMEOUT_MS,
        }
    }

    /// Experiment mode: the measurement setup of Section 5 (acknowledged requests,
    /// per-message service time).
    pub fn experiment(protocol: ProtocolKind, service_time: f64) -> Self {
        RunConfig {
            protocol,
            sync: SyncMode::Synchronous,
            seed: 0,
            ack_to_requester: true,
            local_service_time: service_time,
            async_lo_factor: SimConfig::DEFAULT_ASYNC_LO,
            trace: false,
            grant_timeout_ms: RunConfig::DEFAULT_GRANT_TIMEOUT_MS,
        }
    }

    /// Set the live-tier grant timeout (milliseconds).
    pub fn with_grant_timeout_ms(mut self, ms: u64) -> Self {
        self.grant_timeout_ms = ms;
        self
    }

    /// The live-tier grant timeout as a [`std::time::Duration`].
    pub fn grant_timeout(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.grant_timeout_ms)
    }

    /// Switch to the asynchronous model with the given seed.
    pub fn asynchronous(mut self, seed: u64) -> Self {
        self.sync = SyncMode::Asynchronous;
        self.seed = seed;
        self
    }

    /// Set the lower bound on asynchronous latencies (a fraction of the link weight
    /// in `(0, 1]`; the paper's model only requires latencies to be positive and at
    /// most the link weight).
    pub fn with_async_floor(mut self, lo_factor: f64) -> Self {
        self.async_lo_factor = lo_factor;
        self
    }
}

/// Everything measured in one protocol run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueuingOutcome {
    /// Which protocol ran.
    pub protocol: ProtocolKind,
    /// The requests that were issued (for closed-loop workloads, reconstructed from
    /// the run), across all objects.
    pub schedule: RequestSchedule,
    /// The validated total order of the default object ([`ObjectId::DEFAULT`]) —
    /// i.e. *the* order of a single-object run. Empty if the workload never touched
    /// object 0.
    pub order: QueuingOrder,
    /// The validated total order of every object, ascending by object id. Each
    /// order is validated independently against the object's sub-schedule.
    pub orders: Vec<(ObjectId, QueuingOrder)>,
    /// Total latency per Definitions 3.2/3.3, in time units, summed over objects.
    pub total_latency: f64,
    /// Virtual time at which the system became quiescent (the experiment's
    /// "total latency for N enqueues" of Figure 10).
    pub makespan: f64,
    /// All messages delivered by the network.
    pub total_messages: u64,
    /// Simulator events processed (deliveries + external inputs + timer firings) —
    /// the numerator of the events/sec throughput benchmarks.
    pub sim_events: u64,
    /// Inter-processor protocol messages: arrow `queue()` hops, or centralized
    /// enqueue/reply messages.
    pub protocol_messages: u64,
    /// `protocol_messages / |R|` — the quantity of Figure 11.
    pub hops_per_request: f64,
    /// Mean time from a request's issue to its requester learning its predecessor
    /// (only meaningful when acknowledgements are enabled).
    pub mean_completion_latency: f64,
}

impl QueuingOutcome {
    /// Number of requests handled (across all objects).
    pub fn request_count(&self) -> usize {
        self.schedule.len()
    }

    /// Number of distinct objects that saw at least one request.
    pub fn object_count(&self) -> usize {
        self.orders.len()
    }

    /// The validated queuing order of one object, if it saw any requests.
    pub fn order_for(&self, obj: ObjectId) -> Option<&QueuingOrder> {
        self.orders
            .iter()
            .find(|(o, _)| *o == obj)
            .map(|(_, order)| order)
    }
}

/// A typed failure of a protocol run.
///
/// The historical entry points ([`run`], [`run_schedule`]) abort the process on a
/// protocol bug, which is the right behaviour for experiments — a corrupted order
/// must not silently feed a figure. The conformance harness, however, needs failures
/// *as data*: a differential sweep records the failing case, shrinks it and moves on.
/// The `*_checked` entry points ([`run_checked`], [`run_schedule_checked`]) return
/// this error instead of panicking; the panicking wrappers delegate to them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunError {
    /// The protocol produced an invalid queuing order for one object (see
    /// [`crate::order::OrderError`] for what can go wrong with a record set).
    InvalidOrder {
        /// The object whose order failed validation.
        obj: ObjectId,
        /// Why the records do not assemble into a valid total order.
        error: crate::order::OrderError,
    },
    /// A node observed a message that violates the protocol (e.g. an arrow node
    /// receiving a centralized-protocol message). The offending message is dropped
    /// and recorded rather than aborting the simulation.
    ProtocolViolation {
        /// The node that observed the violation.
        node: NodeId,
        /// Human-readable description of the violating input.
        description: String,
    },
    /// A transport-level failure made the run unable to complete (used by the
    /// live-tier drivers, e.g. a socket peer that stayed unreachable).
    Transport {
        /// The node that observed the failure.
        node: NodeId,
        /// Human-readable description of the failure.
        description: String,
    },
    /// A live-tier acquire waited longer than [`RunConfig::grant_timeout_ms`] for
    /// its token — the classic symptom of a lost token (e.g. its holder crashed
    /// and recovery failed). Distinct from [`RunError::Transport`] so sweeps can
    /// tell a deadlock from an I/O failure.
    GrantTimeout {
        /// The node whose acquire starved.
        node: NodeId,
        /// The object it was waiting for.
        obj: ObjectId,
        /// How long it waited, in milliseconds.
        waited_ms: u64,
    },
    /// A run with fault injection broke the churn contract: a surviving request
    /// was never granted (or granted twice), or the per-epoch order records are
    /// inconsistent (see [`crate::order::validate_churn_records`]).
    ChurnViolation {
        /// Human-readable description of the violated invariant.
        description: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidOrder { obj, error } => {
                write!(
                    f,
                    "protocol produced an invalid queuing order for {obj}: {error:?}"
                )
            }
            RunError::ProtocolViolation { node, description } => {
                write!(f, "protocol violation at node {node}: {description}")
            }
            RunError::Transport { node, description } => {
                write!(f, "transport failure at node {node}: {description}")
            }
            RunError::GrantTimeout {
                node,
                obj,
                waited_ms,
            } => {
                write!(
                    f,
                    "grant timed out at node {node} for {obj} after {waited_ms} ms \
                     (possible lost token)"
                )
            }
            RunError::ChurnViolation { description } => {
                write!(f, "churn contract violated: {description}")
            }
        }
    }
}

impl std::error::Error for RunError {}

fn sim_config(config: &RunConfig) -> SimConfig {
    let (latency, local_order) = match config.sync {
        SyncMode::Synchronous => (LatencyModel::EdgeWeight, LocalOrder::Fifo),
        SyncMode::Asynchronous => (
            LatencyModel::ScaledUniform {
                lo_factor: config.async_lo_factor,
            },
            LocalOrder::Random,
        ),
    };
    SimConfig {
        latency,
        seed: config.seed,
        local_order,
        trace: config.trace,
        max_events: None,
        max_time: None,
    }
}

/// Run a queuing protocol on an instance with the given workload and configuration.
///
/// # Panics
/// If the protocol produces an invalid queuing order or violates the message
/// contract (which would be a protocol bug — see [`run_checked`] for the
/// non-aborting variant), or the workload/configuration combination is
/// inconsistent (closed-loop without acknowledgements).
pub fn run(instance: &Instance, workload: &Workload, config: &RunConfig) -> QueuingOutcome {
    run_checked(instance, workload, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`run`], but protocol failures come back as a typed [`RunError`] instead of
/// aborting the process — the form the conformance harness needs (failures as data).
pub fn run_checked(
    instance: &Instance,
    workload: &Workload,
    config: &RunConfig,
) -> Result<QueuingOutcome, RunError> {
    let workload = match workload {
        Workload::OpenLoop(schedule) => WorkloadRef::Open(schedule),
        Workload::ClosedLoop(spec) => WorkloadRef::Closed(spec),
    };
    run_ref(instance, workload, config).map(|(outcome, _)| outcome)
}

/// Run a queuing protocol on an open-loop schedule without wrapping it in a
/// [`Workload`] (and therefore without cloning it — schedules can hold millions of
/// requests, and sweeps call this in a tight loop).
///
/// # Panics
/// On protocol bugs, like [`run`]; use [`run_schedule_checked`] to get a typed
/// error instead.
pub fn run_schedule(
    instance: &Instance,
    schedule: &RequestSchedule,
    config: &RunConfig,
) -> QueuingOutcome {
    run_schedule_checked(instance, schedule, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`run_schedule`], but returns protocol failures as a typed [`RunError`]
/// (invalid queuing order, dropped protocol-violating message) instead of panicking.
pub fn run_schedule_checked(
    instance: &Instance,
    schedule: &RequestSchedule,
    config: &RunConfig,
) -> Result<QueuingOutcome, RunError> {
    run_ref(instance, WorkloadRef::Open(schedule), config).map(|(outcome, _)| outcome)
}

/// Like [`run_schedule_checked`], but forces tracing on and returns the full
/// message [`desim::Trace`] alongside the outcome — the conformance harness uses
/// it to check transport-level invariants (e.g. per-link FIFO delivery) that the
/// assembled [`QueuingOutcome`] cannot express.
pub fn run_schedule_traced(
    instance: &Instance,
    schedule: &RequestSchedule,
    config: &RunConfig,
) -> Result<(QueuingOutcome, desim::Trace), RunError> {
    let mut config = config.clone();
    config.trace = true;
    run_ref(instance, WorkloadRef::Open(schedule), &config)
}

/// Like [`run_schedule_checked`], but every arrow node carries a recording probe
/// built by `probe_for` (typically [`arrow_trace::TraceRecorder::sim_probe`]), so
/// the run leaves a causal event trace behind. The probes are dropped — and
/// therefore flushed to their recorder — before this returns.
///
/// The simulator advances virtual time, so use sim-mode probes: each node emits
/// a [`arrow_trace::ProbeEvent::Tick`] carrying the simulation clock before
/// every dispatch.
///
/// # Panics
/// If the config selects the centralized protocol (probes instrument the arrow
/// automaton).
pub fn run_schedule_probed<P: arrow_trace::Probe>(
    instance: &Instance,
    schedule: &RequestSchedule,
    config: &RunConfig,
    probe_for: impl FnMut(NodeId) -> P,
) -> Result<QueuingOutcome, RunError> {
    assert_eq!(
        config.protocol,
        ProtocolKind::Arrow,
        "probed runs instrument the arrow protocol only"
    );
    run_arrow_with(instance, WorkloadRef::Open(schedule), config, probe_for)
        .map(|(outcome, _)| outcome)
}

/// Delay, in time units, between a fault event and the detection signal that bumps
/// every surviving node to the next recovery epoch. Correctness does not depend on
/// the value (stale-epoch traffic is rejected on receipt); it only controls how long
/// the directory runs in a degraded state.
pub const FAULT_DETECTION_DELAY: f64 = 1.5;

/// Everything observed in one simulator run under fault injection.
///
/// The fault-free outcome type ([`QueuingOutcome`]) cannot describe a churn run:
/// requests may never be issued (their node was crashed), each recovery epoch
/// builds its own order chain, and completion counts — not a single total order —
/// are the liveness evidence. [`ChurnOutcome::validate`] checks the churn contract:
/// every issued request granted exactly once, every epoch fork-free, the final
/// epoch one complete chain per object.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnOutcome {
    /// The scheduled (input) requests.
    pub schedule: RequestSchedule,
    /// Requests actually issued by their node (sorted by id).
    pub issued: Vec<RequestId>,
    /// Scheduled requests that were never issued because their node was crashed at
    /// issue time — excused from the liveness contract (sorted by id).
    pub excused: Vec<RequestId>,
    /// Requests whose requester observed completion, first notification per
    /// request (sorted by id).
    pub granted: Vec<RequestId>,
    /// All successor records, epoch-stamped.
    pub records: Vec<OrderRecord>,
    /// The epoch the run converged to (= number of fault events).
    pub final_epoch: u64,
    /// Messages lost to crashes and severed links.
    pub messages_dropped: u64,
    /// Externals/timers silenced at crashed nodes.
    pub silenced_inputs: u64,
    /// Stale-epoch messages rejected by nodes.
    pub stale_drops: u64,
    /// Duplicate cross-epoch completion notifications suppressed (first one wins).
    pub duplicate_grants: u64,
    /// Virtual time at which the system drained.
    pub makespan: f64,
}

impl ChurnOutcome {
    /// Records proving the directory rebuilt a queue from a *regenerated* root
    /// token: successions recorded behind the virtual root request in an epoch
    /// bumped by fault recovery (> 0). At least one of these means the token was
    /// regenerated after being lost.
    pub fn token_regenerations(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.epoch > 0 && r.predecessor.is_root())
            .count() as u64
    }

    /// Check the churn liveness and order contract: every issued request granted
    /// exactly once (never-issued requests are excused), every `(object, epoch)`
    /// record group fork-free, and the final epoch forming one complete chain per
    /// object.
    pub fn validate(&self) -> Result<(), RunError> {
        for req in &self.issued {
            if self.granted.binary_search(req).is_err() {
                return Err(RunError::ChurnViolation {
                    description: format!("request {req} was issued but never granted"),
                });
            }
        }
        for req in &self.granted {
            if self.issued.binary_search(req).is_err() {
                return Err(RunError::ChurnViolation {
                    description: format!("request {req} was granted but never issued"),
                });
            }
        }
        validate_churn_records(&self.records, self.final_epoch).map_err(|e| {
            RunError::ChurnViolation {
                description: e.to_string(),
            }
        })
    }
}

/// Run the arrow protocol on an open-loop schedule while injecting the given
/// fault schedule, with epoch-based recovery: after each fault event every
/// surviving node receives a detection signal ([`ProtoMsg::Epoch`]) that resets
/// the tree orientation, regenerates the object tokens at the root and re-issues
/// still-pending requests under their original ids.
///
/// Acknowledgements are forced on (the requester must observe completion for the
/// liveness contract to be checkable). Returns the raw observations; call
/// [`ChurnOutcome::validate`] for the contract check.
///
/// # Panics
/// If the config selects the centralized protocol (fault recovery is an arrow
/// protocol extension) or a positive local service time (a crash would strand the
/// service timer).
pub fn run_schedule_faulted(
    instance: &Instance,
    schedule: &RequestSchedule,
    config: &RunConfig,
    faults: &FaultSchedule,
) -> Result<ChurnOutcome, RunError> {
    assert_eq!(
        config.protocol,
        ProtocolKind::Arrow,
        "fault injection supports the arrow protocol only"
    );
    assert_eq!(
        config.local_service_time, 0.0,
        "faulted runs require free local computation (a crash would strand the \
         service-queue timer and wedge the node)"
    );
    let n = instance.node_count();
    let tree = &instance.tree;
    let root = tree.root();
    faults
        .validate(tree)
        .map_err(|description| RunError::ChurnViolation { description })?;

    let k = schedule.object_id_bound();
    let mut nodes: Vec<ArrowNode> = (0..n)
        .map(|v| {
            let link = if v == root {
                v
            } else {
                tree.parent(v).unwrap()
            };
            ArrowNode::new_multi(v, &vec![link; k], true, 0.0)
        })
        .collect();
    let dm = instance.distances();
    for node in &mut nodes {
        node.set_distances(Arc::clone(&dm));
    }

    let mut config = config.clone();
    config.ack_to_requester = true;
    let mut sim = Simulator::new(nodes, sim_config(&config));
    for v in 0..n {
        if let Some(p) = tree.parent(v) {
            sim.set_link_weight(v, p, tree.parent_edge_weight(v));
        }
    }
    for r in schedule.requests() {
        sim.schedule_external(
            r.time,
            r.node,
            ProtoMsg::Issue {
                req: r.id,
                obj: r.obj,
            },
        );
    }
    // Inject the faults, and after each one a detection signal to every node
    // advancing the recovery epoch (crashed nodes miss it — silenced — and catch up
    // from the next signal or fast-forward from live traffic after restarting).
    for (t, fault) in faults.events_for_sim(tree) {
        sim.schedule_fault(t, fault);
    }
    for (i, ev) in faults.events.iter().enumerate() {
        let t = SimTime::from_units(ev.at) + SimDuration::from_units_f64(FAULT_DETECTION_DELAY);
        for v in 0..n {
            sim.schedule_external(
                t,
                v,
                ProtoMsg::Epoch {
                    epoch: i as u64 + 1,
                },
            );
        }
    }
    let outcome = sim.run();

    let mut records: Vec<OrderRecord> = Vec::new();
    let mut issued: Vec<RequestId> = Vec::new();
    let mut granted: Vec<RequestId> = Vec::new();
    let mut stale_drops = 0u64;
    let mut duplicate_grants = 0u64;
    for v in 0..n {
        let node = sim.node(v);
        if let Some(description) = node.protocol_violation() {
            return Err(RunError::ProtocolViolation {
                node: v,
                description: description.to_string(),
            });
        }
        records.extend_from_slice(node.records());
        issued.extend(node.issued().iter().map(|&(id, _, _)| id));
        granted.extend(node.own_completions().iter().map(|&(id, _)| id));
        stale_drops += node.stale_drops();
        duplicate_grants += node.duplicate_grants();
    }
    issued.sort_unstable();
    granted.sort_unstable();
    let issued_set: std::collections::HashSet<RequestId> = issued.iter().copied().collect();
    let excused: Vec<RequestId> = schedule
        .requests()
        .iter()
        .map(|r| r.id)
        .filter(|id| !issued_set.contains(id))
        .collect();
    Ok(ChurnOutcome {
        schedule: schedule.clone(),
        issued,
        excused,
        granted,
        records,
        final_epoch: faults.final_epoch(),
        messages_dropped: sim.stats().messages_dropped,
        silenced_inputs: sim.stats().silenced_inputs,
        stale_drops,
        duplicate_grants,
        makespan: outcome.final_time.as_units_f64(),
    })
}

/// Borrowed view of a workload, so harness entry points never clone schedules.
#[derive(Clone, Copy)]
enum WorkloadRef<'a> {
    Open(&'a RequestSchedule),
    Closed(&'a ClosedLoopSpec),
}

fn run_ref(
    instance: &Instance,
    workload: WorkloadRef<'_>,
    config: &RunConfig,
) -> Result<(QueuingOutcome, desim::Trace), RunError> {
    match config.protocol {
        ProtocolKind::Arrow => run_arrow(instance, workload, config),
        ProtocolKind::Centralized => run_centralized(instance, workload, config),
    }
}

fn closed_loop_spec<'a>(workload: WorkloadRef<'a>) -> Option<&'a ClosedLoopSpec> {
    match workload {
        WorkloadRef::Closed(spec) => Some(spec),
        WorkloadRef::Open(_) => None,
    }
}

fn schedule_open_loop(
    sim: &mut Simulator<ProtoMsg, impl desim::Process<ProtoMsg>>,
    workload: WorkloadRef<'_>,
) {
    if let WorkloadRef::Open(schedule) = workload {
        for r in schedule.requests() {
            sim.schedule_external(
                r.time,
                r.node,
                ProtoMsg::Issue {
                    req: r.id,
                    obj: r.obj,
                },
            );
        }
    }
}

fn run_arrow(
    instance: &Instance,
    workload: WorkloadRef<'_>,
    config: &RunConfig,
) -> Result<(QueuingOutcome, desim::Trace), RunError> {
    run_arrow_with(instance, workload, config, |_| arrow_trace::NoProbe)
}

fn run_arrow_with<P: arrow_trace::Probe>(
    instance: &Instance,
    workload: WorkloadRef<'_>,
    config: &RunConfig,
    mut probe_for: impl FnMut(NodeId) -> P,
) -> Result<(QueuingOutcome, desim::Trace), RunError> {
    let n = instance.node_count();
    let tree = &instance.tree;
    let root = tree.root();
    let closed = closed_loop_spec(workload);
    if closed.is_some() {
        assert!(
            config.ack_to_requester,
            "closed-loop workloads require acknowledgements (the requester must learn \
             about completion to issue its next request)"
        );
    }

    // One independent arrow automaton per object, all rooted at the tree root (every
    // object's virtual request starts there). K is whatever the workload names.
    let k = match workload {
        WorkloadRef::Open(schedule) => schedule.object_id_bound(),
        WorkloadRef::Closed(_) => 1,
    };
    // Per-node arrow state is indexed by object id, so total state is n × K object
    // slots. Object ids are expected to be dense (the generators produce 0..K);
    // refuse pathologically sparse id spaces instead of allocating for them.
    assert!(
        k.saturating_mul(n) <= (1 << 26),
        "object id space too large: max object id {} on {n} nodes would allocate \
         {k} object states per node — use dense object ids starting at 0",
        k - 1
    );
    let mut nodes: Vec<ArrowNode<P>> = (0..n)
        .map(|v| {
            let link = if v == root {
                v
            } else {
                tree.parent(v).unwrap()
            };
            let links = vec![link; k];
            ArrowNode::new_multi_with_probe(
                v,
                &links,
                config.ack_to_requester,
                config.local_service_time,
                probe_for(v),
            )
        })
        .collect();
    if let Some(spec) = closed {
        for node in &mut nodes {
            node.enable_closed_loop(spec, n);
        }
    }
    // Acknowledgements travel over the graph metric: each ack is a direct send
    // paying d_G(sink, requester), so only the tree links below need weights.
    if config.ack_to_requester {
        let dm = instance.distances();
        for node in &mut nodes {
            node.set_distances(Arc::clone(&dm));
        }
    }

    let mut sim = Simulator::new(nodes, sim_config(config));
    // Tree edges carry the tree edge weight.
    for v in 0..n {
        if let Some(p) = tree.parent(v) {
            sim.set_link_weight(v, p, tree.parent_edge_weight(v));
        }
    }
    schedule_open_loop(&mut sim, workload);
    let outcome = sim.run();

    // Harvest per-node logs.
    let mut records: Vec<OrderRecord> = Vec::new();
    let mut issued: Vec<Request> = Vec::new();
    let mut protocol_messages = 0u64;
    let mut completion_latency_sum = 0.0;
    let mut completion_count = 0u64;
    for v in 0..n {
        let node = sim.node(v);
        if let Some(description) = node.protocol_violation() {
            return Err(RunError::ProtocolViolation {
                node: v,
                description: description.to_string(),
            });
        }
        records.extend_from_slice(node.records());
        issued.extend(node.issued().iter().map(|&(id, obj, time)| Request {
            id,
            node: v,
            time,
            obj,
        }));
        protocol_messages += node.queue_hops();
        let issue_times: std::collections::HashMap<_, _> =
            node.issued().iter().map(|&(r, _, t)| (r, t)).collect();
        for &(req, done) in node.own_completions() {
            if let Some(&issue_time) = issue_times.get(&req) {
                completion_latency_sum += (done - issue_time).as_units_f64();
                completion_count += 1;
            }
        }
    }
    let result = finish(
        ProtocolKind::Arrow,
        issued,
        records,
        protocol_messages,
        completion_latency_sum,
        completion_count,
        outcome.final_time,
        sim.stats().messages_delivered,
        outcome.events,
    )?;
    Ok((result, sim.trace().clone()))
}

fn run_centralized(
    instance: &Instance,
    workload: WorkloadRef<'_>,
    config: &RunConfig,
) -> Result<(QueuingOutcome, desim::Trace), RunError> {
    let n = instance.node_count();
    // The central node is the tree root (the initial queue tail in both protocols).
    let central = instance.tree.root();
    let closed = closed_loop_spec(workload);

    let mut nodes: Vec<CentralizedNode> = (0..n)
        .map(|v| CentralizedNode::new(v, central, config.local_service_time))
        .collect();
    if let Some(spec) = closed {
        for node in &mut nodes {
            node.enable_closed_loop(spec, n);
        }
    }

    let mut sim = Simulator::new(nodes, sim_config(config));
    // Requests and replies travel directly over the graph: weight = d_G(v, central).
    let dm = instance.distances();
    for v in 0..n {
        if v != central {
            sim.set_link_weight(v, central, dm.dist(v, central));
        }
    }
    schedule_open_loop(&mut sim, workload);
    let outcome = sim.run();

    let mut records: Vec<OrderRecord> = Vec::new();
    let mut issued: Vec<Request> = Vec::new();
    let mut protocol_messages = 0u64;
    let mut completion_latency_sum = 0.0;
    let mut completion_count = 0u64;
    for v in 0..n {
        let node = sim.node(v);
        if let Some(description) = node.protocol_violation() {
            return Err(RunError::ProtocolViolation {
                node: v,
                description: description.to_string(),
            });
        }
        records.extend_from_slice(node.records());
        issued.extend(node.issued().iter().map(|&(id, obj, time)| Request {
            id,
            node: v,
            time,
            obj,
        }));
        protocol_messages += node.remote_messages();
        let issue_times: std::collections::HashMap<_, _> =
            node.issued().iter().map(|&(r, _, t)| (r, t)).collect();
        for &(req, done) in node.own_completions() {
            if let Some(&issue_time) = issue_times.get(&req) {
                completion_latency_sum += (done - issue_time).as_units_f64();
                completion_count += 1;
            }
        }
    }
    let result = finish(
        ProtocolKind::Centralized,
        issued,
        records,
        protocol_messages,
        completion_latency_sum,
        completion_count,
        outcome.final_time,
        sim.stats().messages_delivered,
        outcome.events,
    )?;
    Ok((result, sim.trace().clone()))
}

/// Assemble a validated [`QueuingOutcome`] from externally journaled requests and
/// successor records — the assembly half of the harness, exposed so the live-tier
/// drivers (thread runtime, socket runtime) can hold their journals to exactly the
/// same per-object validation contract the simulator output goes through. Returns
/// [`RunError::InvalidOrder`] when any object's records fail validation.
pub fn outcome_from_records(
    protocol: ProtocolKind,
    issued: Vec<Request>,
    records: Vec<OrderRecord>,
    protocol_messages: u64,
    total_messages: u64,
    makespan: SimTime,
) -> Result<QueuingOutcome, RunError> {
    finish(
        protocol,
        issued,
        records,
        protocol_messages,
        0.0,
        0,
        makespan,
        total_messages,
        0,
    )
}

#[allow(clippy::too_many_arguments)]
fn finish(
    protocol: ProtocolKind,
    mut issued: Vec<Request>,
    records: Vec<OrderRecord>,
    protocol_messages: u64,
    completion_latency_sum: f64,
    completion_count: u64,
    final_time: SimTime,
    total_messages: u64,
    sim_events: u64,
) -> Result<QueuingOutcome, RunError> {
    issued.sort_by_key(|r| (r.time, r.id));
    let schedule = RequestSchedule::from_requests(issued);
    // Each object's queue is validated independently against the object's
    // sub-schedule (the tier-shared contract of `order::per_object_orders`): every
    // request queued exactly once, one unbroken chain from that object's virtual
    // root request.
    let orders = crate::order::per_object_orders(&records, &schedule)
        .map_err(|(obj, error)| RunError::InvalidOrder { obj, error })?;
    let mut total_latency = 0.0;
    for (_, order) in &orders {
        // Latency lookups are by request id, which the full schedule resolves
        // identically to the per-object sub-schedule — no need to rebuild subs.
        total_latency += order.total_latency(&schedule).as_units_f64();
    }
    let order = orders
        .iter()
        .find(|(o, _)| *o == ObjectId::DEFAULT)
        .map(|(_, order)| order.clone())
        .unwrap_or_else(|| {
            QueuingOrder::from_records(&[], &RequestSchedule::default())
                .expect("an empty record set is a valid (empty) order")
        });
    let request_count = schedule.len().max(1);
    Ok(QueuingOutcome {
        protocol,
        total_latency,
        makespan: final_time.as_units_f64(),
        total_messages,
        sim_events,
        protocol_messages,
        hops_per_request: protocol_messages as f64 / request_count as f64,
        mean_completion_latency: if completion_count > 0 {
            completion_latency_sum / completion_count as f64
        } else {
            0.0
        },
        schedule,
        order,
        orders,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn path_instance(n: usize) -> Instance {
        Instance::tree_only(netgraph::generators::path(n), 0)
    }

    #[test]
    fn arrow_cost_equals_sum_of_tree_distances_between_consecutive_requests() {
        // Equation (2) of the paper: with unit latencies and no concurrency-induced
        // deflection ambiguity, the total latency is the sum of tree distances between
        // consecutive requests in arrow's order.
        let instance = path_instance(6);
        let schedule = workload::sequential_round_robin(&[5, 2, 4], 3, 100.0);
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule),
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        // Order is issue order (sequential): 5 behind root(0), 2 behind 5, 4 behind 2.
        // d_T = 5 + 3 + 2 = 10.
        assert_eq!(outcome.total_latency, 10.0);
        assert_eq!(outcome.request_count(), 3);
        assert_eq!(outcome.protocol_messages, 10);
    }

    #[test]
    fn concurrent_burst_produces_valid_order_for_both_protocols() {
        let instance = Instance::complete_uniform(12, SpanningTreeKind::BalancedBinary);
        let nodes: Vec<NodeId> = (0..12).collect();
        let schedule = workload::one_shot_burst(&nodes, SimTime::ZERO);
        for protocol in [ProtocolKind::Arrow, ProtocolKind::Centralized] {
            let outcome = run(
                &instance,
                &Workload::OpenLoop(schedule.clone()),
                &RunConfig::analysis(protocol),
            );
            assert_eq!(outcome.request_count(), 12);
            assert_eq!(outcome.order.len(), 12);
            assert!(outcome.total_latency > 0.0);
        }
    }

    #[test]
    fn asynchronous_arrow_still_produces_a_valid_order() {
        let instance = Instance::complete_uniform(10, SpanningTreeKind::BalancedBinary);
        let schedule = workload::poisson(10, 1.0, 20.0, 3);
        let count = schedule.len();
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule),
            &RunConfig::analysis(ProtocolKind::Arrow).asynchronous(11),
        );
        assert_eq!(outcome.order.len(), count);
    }

    #[test]
    fn closed_loop_experiment_runs_for_both_protocols() {
        let instance = Instance::complete_uniform(8, SpanningTreeKind::BalancedBinary);
        let spec = ClosedLoopSpec {
            requests_per_node: 20,
            local_service_time: 0.05,
        };
        let arrow = run(
            &instance,
            &Workload::ClosedLoop(spec),
            &RunConfig::experiment(ProtocolKind::Arrow, spec.local_service_time),
        );
        let central = run(
            &instance,
            &Workload::ClosedLoop(spec),
            &RunConfig::experiment(ProtocolKind::Centralized, spec.local_service_time),
        );
        assert_eq!(arrow.request_count(), 8 * 20);
        assert_eq!(central.request_count(), 8 * 20);
        assert!(arrow.makespan > 0.0);
        assert!(central.makespan > 0.0);
        // The centralized home node handles every request serially; arrow distributes
        // the load, so with this many nodes its makespan should not be worse.
        assert!(arrow.makespan <= central.makespan * 1.5);
    }

    #[test]
    fn arrow_hops_per_request_are_low_under_high_contention() {
        // Figure 11's observation: under closed-loop contention, most requests find
        // their predecessor locally or nearby, so hops/request is small (< 2 even on
        // small systems; < 1 for larger ones in the paper).
        let instance = Instance::complete_uniform(16, SpanningTreeKind::BalancedBinary);
        let spec = ClosedLoopSpec {
            requests_per_node: 50,
            local_service_time: 0.05,
        };
        let outcome = run(
            &instance,
            &Workload::ClosedLoop(spec),
            &RunConfig::experiment(ProtocolKind::Arrow, spec.local_service_time),
        );
        assert!(
            outcome.hops_per_request < 3.0,
            "hops per request {}",
            outcome.hops_per_request
        );
    }

    #[test]
    fn acks_pay_graph_distance_not_tree_edge_weight() {
        // Triangle: the tree edge {0,1} weighs 5, but the graph path 1-2-0 costs 2.
        // The queue() message must still pay the tree edge (protocol traffic follows
        // tree links), while the acknowledgement back to the requester travels over
        // the graph metric: d_G(0, 1) = 2.
        let mut graph = netgraph::Graph::new(3);
        graph.add_weighted_edge(0, 1, 5.0);
        graph.add_weighted_edge(0, 2, 1.0);
        graph.add_weighted_edge(1, 2, 1.0);
        let mut tree_graph = netgraph::Graph::new(3);
        tree_graph.add_weighted_edge(0, 1, 5.0);
        tree_graph.add_weighted_edge(0, 2, 1.0);
        let tree = RootedTree::from_tree_graph(&tree_graph, 0);
        let instance = Instance::new(graph, tree);
        let schedule = RequestSchedule::from_pairs(&[(1, SimTime::ZERO)]);
        let outcome = run_schedule(
            &instance,
            &schedule,
            &RunConfig::experiment(ProtocolKind::Arrow, 0.0),
        );
        // queue() 1 -> 0 over the tree edge: 5 units; Found 0 -> 1 over d_G: 2 units.
        assert_eq!(outcome.mean_completion_latency, 7.0);
    }

    #[test]
    fn multi_object_run_validates_each_object_independently() {
        let instance = Instance::complete_uniform(12, SpanningTreeKind::BalancedBinary);
        let k = 3;
        let triples: Vec<(NodeId, SimTime, ObjectId)> = (0..24)
            .map(|i| {
                (
                    i % 12,
                    SimTime::from_units((i / 6) as u64),
                    ObjectId((i % k) as u32),
                )
            })
            .collect();
        let schedule = RequestSchedule::from_object_pairs(&triples);
        let outcome = run_schedule(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        assert_eq!(outcome.object_count(), k);
        let mut total = 0;
        for (obj, order) in &outcome.orders {
            let sub = outcome.schedule.for_object(*obj);
            assert_eq!(order.len(), sub.len(), "object {obj}");
            total += order.len();
        }
        assert_eq!(
            total, 24,
            "every request queued in exactly one object's order"
        );
        // The top-level `order` is object 0's.
        assert_eq!(
            outcome.order.order(),
            outcome.order_for(ObjectId::DEFAULT).unwrap().order()
        );
        // The centralized baseline agrees on the multi-object contract.
        let central = run_schedule(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Centralized),
        );
        assert_eq!(central.object_count(), k);
    }

    #[test]
    fn async_floor_is_threaded_through_run_config() {
        let instance = path_instance(5);
        let schedule = workload::poisson(5, 1.0, 10.0, 3);
        let count = schedule.len();
        let cfg = RunConfig::analysis(ProtocolKind::Arrow)
            .asynchronous(7)
            .with_async_floor(0.9);
        assert_eq!(cfg.async_lo_factor, 0.9);
        let outcome = run_schedule(&instance, &schedule, &cfg);
        assert_eq!(outcome.order.len(), count);
    }

    #[test]
    fn centralized_order_matches_arrival_order_for_sequential_requests() {
        let instance = path_instance(5);
        let schedule = workload::sequential_round_robin(&[4, 1, 3], 3, 50.0);
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule),
            &RunConfig::analysis(ProtocolKind::Centralized),
        );
        let order_nodes: Vec<NodeId> = outcome
            .order
            .order()
            .iter()
            .map(|&id| outcome.schedule.get(id).unwrap().node)
            .collect();
        assert_eq!(order_nodes, vec![4, 1, 3]);
    }

    #[test]
    fn checked_path_reports_invalid_orders_as_data_not_aborts() {
        // Pre-fix, an invalid record set aborted the process from inside `finish`;
        // the checked assembly path must hand the same failure back as a typed
        // `RunError` the conformance harness can record and shrink.
        let schedule = RequestSchedule::from_pairs(&[
            (1, SimTime::ZERO),
            (2, SimTime::ZERO),
            (3, SimTime::ZERO),
        ]);
        let issued: Vec<Request> = schedule.requests().to_vec();
        // Drop request 3's record entirely: the chain is broken.
        let records: Vec<OrderRecord> = [(0u64, 1u64), (1, 2)]
            .iter()
            .map(|&(pred, succ)| OrderRecord {
                predecessor: crate::request::RequestId(pred),
                successor: crate::request::RequestId(succ),
                obj: ObjectId::DEFAULT,
                at_node: 0,
                informed_at: SimTime::from_units(1),
                epoch: 0,
            })
            .collect();
        let err = outcome_from_records(
            ProtocolKind::Arrow,
            issued,
            records,
            2,
            2,
            SimTime::from_units(5),
        )
        .unwrap_err();
        match &err {
            RunError::InvalidOrder { obj, error } => {
                assert_eq!(*obj, ObjectId::DEFAULT);
                assert_eq!(
                    *error,
                    crate::order::OrderError::MissingRequest(crate::request::RequestId(3))
                );
            }
            other => panic!("expected InvalidOrder, got {other:?}"),
        }
        // The panicking wrappers preserve the historical abort message.
        assert!(err.to_string().contains("invalid queuing order"));
    }

    #[test]
    fn checked_path_surfaces_protocol_violations_from_nodes() {
        // Drive the harness's own simulator setup, then inject an out-of-protocol
        // message: the run must come back as RunError::ProtocolViolation, not abort.
        use desim::Simulator;
        let mut sim = Simulator::new(
            vec![
                ArrowNode::new(0, 0, false, 0.0),
                ArrowNode::new(1, 0, false, 0.0),
            ],
            SimConfig::synchronous(),
        );
        sim.schedule_external(
            SimTime::ZERO,
            1,
            ProtoMsg::CentralEnqueue {
                req: crate::request::RequestId(1),
                obj: ObjectId::DEFAULT,
                origin: 1,
            },
        );
        sim.run();
        assert!(sim.node(0).protocol_violation().is_none());
        let violation = sim.node(1).protocol_violation().expect("recorded");
        let err = RunError::ProtocolViolation {
            node: 1,
            description: violation.to_string(),
        };
        assert!(err.to_string().contains("protocol violation at node 1"));
    }

    #[test]
    fn checked_and_panicking_paths_agree_on_valid_runs() {
        let instance = Instance::complete_uniform(8, SpanningTreeKind::BalancedBinary);
        let schedule = workload::poisson(8, 1.0, 10.0, 5);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let checked = run_schedule_checked(&instance, &schedule, &cfg).expect("valid run");
        let panicking = run_schedule(&instance, &schedule, &cfg);
        assert_eq!(checked.total_latency, panicking.total_latency);
        assert_eq!(checked.order.order(), panicking.order.order());
    }

    #[test]
    #[should_panic(expected = "require acknowledgements")]
    fn closed_loop_without_acks_panics() {
        let instance = path_instance(3);
        let spec = ClosedLoopSpec::default();
        let mut cfg = RunConfig::analysis(ProtocolKind::Arrow);
        cfg.local_service_time = 0.05;
        run(&instance, &Workload::ClosedLoop(spec), &cfg);
    }

    #[test]
    #[should_panic(expected = "not an edge of the graph")]
    fn instance_rejects_tree_not_in_graph() {
        let graph = netgraph::generators::path(4);
        let bad_tree = RootedTree::from_tree_graph(&netgraph::generators::star(4), 0);
        Instance::new(graph, bad_tree);
    }

    #[test]
    fn faulted_run_with_no_faults_matches_fault_free_liveness() {
        let instance = Instance::complete_uniform(8, SpanningTreeKind::BalancedBinary);
        let schedule = workload::poisson(8, 1.0, 10.0, 5);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let outcome =
            run_schedule_faulted(&instance, &schedule, &cfg, &FaultSchedule::none()).unwrap();
        outcome.validate().expect("fault-free churn contract");
        assert_eq!(outcome.issued.len(), schedule.len());
        assert_eq!(outcome.granted.len(), schedule.len());
        assert!(outcome.excused.is_empty());
        assert_eq!(outcome.final_epoch, 0);
        assert_eq!(outcome.token_regenerations(), 0);
        assert_eq!(outcome.stale_drops, 0);
    }

    #[test]
    fn crashing_a_request_holder_regenerates_the_token() {
        // Node 3 queues first and becomes the sink; crashing it strands any state
        // it held, and the detection bump must regenerate the token at the root so
        // node 4's later request (epoch 1) queues behind the virtual root request.
        let instance = Instance::complete_uniform(7, SpanningTreeKind::BalancedBinary);
        let schedule =
            RequestSchedule::from_pairs(&[(3, SimTime::ZERO), (4, SimTime::from_units(4))]);
        let faults = FaultSchedule::new(vec![
            crate::fault::FaultEvent {
                at: 2,
                action: crate::fault::FaultAction::CrashNode(3),
            },
            crate::fault::FaultEvent {
                at: 6,
                action: crate::fault::FaultAction::RestartNode(3),
            },
        ]);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let outcome = run_schedule_faulted(&instance, &schedule, &cfg, &faults).unwrap();
        outcome.validate().expect("churn contract under a crash");
        assert_eq!(outcome.final_epoch, 2);
        assert_eq!(outcome.issued.len(), 2, "both nodes were up at issue time");
        assert_eq!(outcome.granted.len(), 2, "both grants survive the crash");
        assert!(
            outcome.token_regenerations() >= 1,
            "a post-crash epoch must rebuild its queue from a regenerated root token"
        );
    }

    #[test]
    fn request_scheduled_at_a_crashed_node_is_excused() {
        let instance = Instance::complete_uniform(7, SpanningTreeKind::BalancedBinary);
        // Node 5 is down for ticks [1, 4); its request at t = 2 is never issued.
        let schedule = RequestSchedule::from_pairs(&[
            (5, SimTime::from_units(2)),
            (6, SimTime::from_units(6)),
        ]);
        let faults = FaultSchedule::new(vec![
            crate::fault::FaultEvent {
                at: 1,
                action: crate::fault::FaultAction::CrashNode(5),
            },
            crate::fault::FaultEvent {
                at: 4,
                action: crate::fault::FaultAction::RestartNode(5),
            },
        ]);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let outcome = run_schedule_faulted(&instance, &schedule, &cfg, &faults).unwrap();
        outcome
            .validate()
            .expect("excused request does not break liveness");
        assert_eq!(outcome.issued.len(), 1);
        assert_eq!(outcome.excused.len(), 1);
        assert!(
            outcome.silenced_inputs >= 1,
            "the issue external was silenced"
        );
    }

    #[test]
    fn generated_fault_schedules_converge_across_seeds() {
        // A miniature of the conformance sweep: seeded generated churn over a
        // steady workload must always satisfy the liveness and per-epoch order
        // contract, whatever mix of crashes, link drops and partitions comes up.
        let instance = Instance::complete_uniform(9, SpanningTreeKind::BalancedBinary);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let mut regenerations = 0u64;
        for seed in 0..12 {
            let faults = FaultSchedule::generate(seed, &instance.tree, 3);
            let schedule = workload::poisson(9, 0.8, 25.0, seed);
            let outcome = run_schedule_faulted(&instance, &schedule, &cfg, &faults)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            outcome
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            regenerations += outcome.token_regenerations();
        }
        assert!(
            regenerations > 0,
            "across 12 seeded churn runs at least one token regeneration happens"
        );
    }

    #[test]
    fn invalid_fault_schedule_is_a_typed_churn_violation() {
        let instance = Instance::complete_uniform(7, SpanningTreeKind::BalancedBinary);
        let schedule = workload::one_shot_burst(&[1], SimTime::ZERO);
        let faults = FaultSchedule::new(vec![crate::fault::FaultEvent {
            at: 1,
            action: crate::fault::FaultAction::CrashNode(2),
        }]);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let err = run_schedule_faulted(&instance, &schedule, &cfg, &faults).unwrap_err();
        assert!(matches!(err, RunError::ChurnViolation { .. }));
        assert!(err.to_string().contains("still crashed"));
    }
}
