//! Harness: run a queuing protocol on a `(graph, spanning tree, workload)` instance
//! and collect the quantities the paper reports.
//!
//! Two measurement modes matter:
//!
//! * **Analysis mode** ([`RunConfig::analysis`]) — no acknowledgements, no local
//!   service time; the cost is the total latency of Definition 3.3 (for each request,
//!   the time from its issue to the moment its predecessor's node learns who its
//!   successor is). This is what the competitive-ratio experiments use.
//! * **Experiment mode** ([`RunConfig::experiment`]) — reproduces Section 5: each
//!   request is acknowledged back to the requester, nodes pay a per-message local
//!   service time, and the workload is closed-loop. The reported quantities are the
//!   makespan (Figure 10) and the average inter-processor hops per request
//!   (Figure 11).

use crate::arrow::ArrowNode;
use crate::centralized::CentralizedNode;
use crate::order::{OrderRecord, QueuingOrder};
use crate::protocol::{ProtoMsg, ProtocolKind};
use crate::request::{Request, RequestSchedule};
use crate::workload::{ClosedLoopSpec, Workload};
use desim::{LatencyModel, LocalOrder, SimConfig, SimTime, Simulator};
use netgraph::spanning::{build_spanning_tree, SpanningTreeKind};
use netgraph::{DistanceMatrix, Graph, NodeId, RootedTree, StretchReport};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// A problem instance: the communication graph and the pre-selected spanning tree.
///
/// The all-pairs graph distances and the stretch report are computed lazily and
/// cached, so a sweep that evaluates many runs (or many workloads) on one topology
/// pays for them once instead of once per run. The caches are shared by `clone()`
/// (the distance matrix sits behind an [`Arc`]) and are thread-safe, so one
/// `Instance` can back a whole parallel sweep.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The communication graph `G`. Private: the cached distance matrix and stretch
    /// report below are derived from it, so mutation after construction would make
    /// them silently stale — build a new `Instance` instead.
    graph: Graph,
    /// The pre-selected rooted spanning tree `T`; its root holds the initial queue tail.
    tree: RootedTree,
    /// Lazily computed all-pairs distances of `graph`.
    dm: OnceLock<Arc<DistanceMatrix>>,
    /// Lazily computed stretch report of `tree` relative to `graph`.
    stretch: OnceLock<StretchReport>,
}

impl Instance {
    /// Create an instance from a graph and a rooted spanning tree over the same nodes.
    ///
    /// # Panics
    /// If the node counts differ or a tree edge is not a graph edge.
    pub fn new(graph: Graph, tree: RootedTree) -> Self {
        assert_eq!(
            graph.node_count(),
            tree.node_count(),
            "graph and tree must have the same node set"
        );
        for v in 0..tree.node_count() {
            if let Some(p) = tree.parent(v) {
                assert!(
                    graph.has_edge(v, p),
                    "tree edge ({v},{p}) is not an edge of the graph"
                );
            }
        }
        Instance {
            graph,
            tree,
            dm: OnceLock::new(),
            stretch: OnceLock::new(),
        }
    }

    /// The platform of the paper's experiment: a complete graph with uniform unit
    /// latency and the requested spanning tree rooted at node 0.
    pub fn complete_uniform(n: usize, kind: SpanningTreeKind) -> Self {
        let graph = netgraph::generators::complete(n, 1.0);
        let tree = build_spanning_tree(&graph, 0, kind);
        Instance {
            graph,
            tree,
            dm: OnceLock::new(),
            stretch: OnceLock::new(),
        }
    }

    /// An instance whose communication graph *is* the tree (`G = T`, stretch 1), as in
    /// the lower-bound construction of Theorem 4.1. Takes the graph by value — the
    /// callers own it, so no clone is needed.
    pub fn tree_only(tree_graph: Graph, root: NodeId) -> Self {
        let tree = RootedTree::from_tree_graph(&tree_graph, root);
        Instance {
            graph: tree_graph,
            tree,
            dm: OnceLock::new(),
            stretch: OnceLock::new(),
        }
    }

    /// The communication graph `G`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The pre-selected rooted spanning tree `T`.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// All-pairs shortest-path distances of the communication graph, computed on
    /// first use and shared (cheaply clonable [`Arc`]) afterwards.
    pub fn distances(&self) -> Arc<DistanceMatrix> {
        Arc::clone(self.dm.get_or_init(|| DistanceMatrix::shared(&self.graph)))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Stretch/diameter report of the tree relative to the graph (computed once,
    /// cached; reuses the cached distance matrix).
    pub fn stretch_report(&self) -> StretchReport {
        *self.stretch.get_or_init(|| {
            netgraph::stretch_with_distances(&self.graph, &self.tree, &self.distances())
        })
    }
}

/// Synchrony model for a run (Sections 3.1 and 3.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncMode {
    /// Every message takes exactly the link weight (unit latency on unweighted graphs).
    Synchronous,
    /// Each message takes an adversarially random fraction of the link weight, with
    /// the worst case normalised to the link weight; simultaneous arrivals are
    /// processed in random order.
    Asynchronous,
}

/// Configuration of a protocol run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    /// Which protocol to run.
    pub protocol: ProtocolKind,
    /// Synchrony model.
    pub sync: SyncMode,
    /// PRNG seed (drives asynchronous delays and random local processing order).
    pub seed: u64,
    /// Send a `Found` acknowledgement back to each requester.
    pub ack_to_requester: bool,
    /// Per-message local service time in time units (0 = free local computation, the
    /// assumption of the analysis).
    pub local_service_time: f64,
    /// Record a full message trace.
    pub trace: bool,
}

impl RunConfig {
    /// Analysis mode: the model of Section 3 (free local computation, no acks).
    pub fn analysis(protocol: ProtocolKind) -> Self {
        RunConfig {
            protocol,
            sync: SyncMode::Synchronous,
            seed: 0,
            ack_to_requester: false,
            local_service_time: 0.0,
            trace: false,
        }
    }

    /// Experiment mode: the measurement setup of Section 5 (acknowledged requests,
    /// per-message service time).
    pub fn experiment(protocol: ProtocolKind, service_time: f64) -> Self {
        RunConfig {
            protocol,
            sync: SyncMode::Synchronous,
            seed: 0,
            ack_to_requester: true,
            local_service_time: service_time,
            trace: false,
        }
    }

    /// Switch to the asynchronous model with the given seed.
    pub fn asynchronous(mut self, seed: u64) -> Self {
        self.sync = SyncMode::Asynchronous;
        self.seed = seed;
        self
    }
}

/// Everything measured in one protocol run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueuingOutcome {
    /// Which protocol ran.
    pub protocol: ProtocolKind,
    /// The requests that were issued (for closed-loop workloads, reconstructed from
    /// the run).
    pub schedule: RequestSchedule,
    /// The validated total order produced by the protocol.
    pub order: QueuingOrder,
    /// Total latency per Definitions 3.2/3.3, in time units.
    pub total_latency: f64,
    /// Virtual time at which the system became quiescent (the experiment's
    /// "total latency for N enqueues" of Figure 10).
    pub makespan: f64,
    /// All messages delivered by the network.
    pub total_messages: u64,
    /// Simulator events processed (deliveries + external inputs + timer firings) —
    /// the numerator of the events/sec throughput benchmarks.
    pub sim_events: u64,
    /// Inter-processor protocol messages: arrow `queue()` hops, or centralized
    /// enqueue/reply messages.
    pub protocol_messages: u64,
    /// `protocol_messages / |R|` — the quantity of Figure 11.
    pub hops_per_request: f64,
    /// Mean time from a request's issue to its requester learning its predecessor
    /// (only meaningful when acknowledgements are enabled).
    pub mean_completion_latency: f64,
}

impl QueuingOutcome {
    /// Number of requests handled.
    pub fn request_count(&self) -> usize {
        self.schedule.len()
    }
}

fn sim_config(config: &RunConfig) -> SimConfig {
    let (latency, local_order) = match config.sync {
        SyncMode::Synchronous => (LatencyModel::EdgeWeight, LocalOrder::Fifo),
        SyncMode::Asynchronous => (
            LatencyModel::ScaledUniform { lo_factor: 0.05 },
            LocalOrder::Random,
        ),
    };
    SimConfig {
        latency,
        seed: config.seed,
        local_order,
        trace: config.trace,
        max_events: None,
        max_time: None,
    }
}

/// Run a queuing protocol on an instance with the given workload and configuration.
///
/// # Panics
/// If the protocol produces an invalid queuing order (which would be a protocol bug)
/// or the workload/configuration combination is inconsistent (closed-loop without
/// acknowledgements).
pub fn run(instance: &Instance, workload: &Workload, config: &RunConfig) -> QueuingOutcome {
    let workload = match workload {
        Workload::OpenLoop(schedule) => WorkloadRef::Open(schedule),
        Workload::ClosedLoop(spec) => WorkloadRef::Closed(spec),
    };
    run_ref(instance, workload, config)
}

/// Run a queuing protocol on an open-loop schedule without wrapping it in a
/// [`Workload`] (and therefore without cloning it — schedules can hold millions of
/// requests, and sweeps call this in a tight loop).
pub fn run_schedule(
    instance: &Instance,
    schedule: &RequestSchedule,
    config: &RunConfig,
) -> QueuingOutcome {
    run_ref(instance, WorkloadRef::Open(schedule), config)
}

/// Borrowed view of a workload, so harness entry points never clone schedules.
#[derive(Clone, Copy)]
enum WorkloadRef<'a> {
    Open(&'a RequestSchedule),
    Closed(&'a ClosedLoopSpec),
}

fn run_ref(instance: &Instance, workload: WorkloadRef<'_>, config: &RunConfig) -> QueuingOutcome {
    match config.protocol {
        ProtocolKind::Arrow => run_arrow(instance, workload, config),
        ProtocolKind::Centralized => run_centralized(instance, workload, config),
    }
}

fn closed_loop_spec<'a>(workload: WorkloadRef<'a>) -> Option<&'a ClosedLoopSpec> {
    match workload {
        WorkloadRef::Closed(spec) => Some(spec),
        WorkloadRef::Open(_) => None,
    }
}

fn schedule_open_loop(
    sim: &mut Simulator<ProtoMsg, impl desim::Process<ProtoMsg>>,
    workload: WorkloadRef<'_>,
) {
    if let WorkloadRef::Open(schedule) = workload {
        for r in schedule.requests() {
            sim.schedule_external(r.time, r.node, ProtoMsg::Issue { req: r.id });
        }
    }
}

fn run_arrow(instance: &Instance, workload: WorkloadRef<'_>, config: &RunConfig) -> QueuingOutcome {
    let n = instance.node_count();
    let tree = &instance.tree;
    let root = tree.root();
    let closed = closed_loop_spec(workload);
    if closed.is_some() {
        assert!(
            config.ack_to_requester,
            "closed-loop workloads require acknowledgements (the requester must learn \
             about completion to issue its next request)"
        );
    }

    let mut nodes: Vec<ArrowNode> = (0..n)
        .map(|v| {
            let link = if v == root {
                v
            } else {
                tree.parent(v).unwrap()
            };
            ArrowNode::new(v, link, config.ack_to_requester, config.local_service_time)
        })
        .collect();
    if let Some(spec) = closed {
        for node in &mut nodes {
            node.enable_closed_loop(spec, n);
        }
    }

    let mut sim = Simulator::new(nodes, sim_config(config));
    // Tree edges carry the tree edge weight.
    for v in 0..n {
        if let Some(p) = tree.parent(v) {
            sim.set_link_weight(v, p, tree.parent_edge_weight(v));
        }
    }
    // Acknowledgements travel directly over the graph: weight = d_G.
    if config.ack_to_requester {
        let dm = instance.distances();
        for u in 0..n {
            for v in (u + 1)..n {
                // Keep tree-edge weights (protocol traffic) intact.
                if tree.parent(u) != Some(v) && tree.parent(v) != Some(u) {
                    sim.set_link_weight(u, v, dm.dist(u, v));
                }
            }
        }
    }
    schedule_open_loop(&mut sim, workload);
    let outcome = sim.run();

    // Harvest per-node logs.
    let mut records: Vec<OrderRecord> = Vec::new();
    let mut issued: Vec<Request> = Vec::new();
    let mut protocol_messages = 0u64;
    let mut completion_latency_sum = 0.0;
    let mut completion_count = 0u64;
    for v in 0..n {
        let node = sim.node(v);
        records.extend_from_slice(node.records());
        issued.extend(
            node.issued()
                .iter()
                .map(|&(id, time)| Request { id, node: v, time }),
        );
        protocol_messages += node.queue_hops();
        let issue_times: std::collections::HashMap<_, _> =
            node.issued().iter().map(|&(r, t)| (r, t)).collect();
        for &(req, done) in node.own_completions() {
            if let Some(&issue_time) = issue_times.get(&req) {
                completion_latency_sum += (done - issue_time).as_units_f64();
                completion_count += 1;
            }
        }
    }
    finish(
        ProtocolKind::Arrow,
        issued,
        records,
        protocol_messages,
        completion_latency_sum,
        completion_count,
        outcome.final_time,
        sim.stats().messages_delivered,
        outcome.events,
    )
}

fn run_centralized(
    instance: &Instance,
    workload: WorkloadRef<'_>,
    config: &RunConfig,
) -> QueuingOutcome {
    let n = instance.node_count();
    // The central node is the tree root (the initial queue tail in both protocols).
    let central = instance.tree.root();
    let closed = closed_loop_spec(workload);

    let mut nodes: Vec<CentralizedNode> = (0..n)
        .map(|v| CentralizedNode::new(v, central, config.local_service_time))
        .collect();
    if let Some(spec) = closed {
        for node in &mut nodes {
            node.enable_closed_loop(spec, n);
        }
    }

    let mut sim = Simulator::new(nodes, sim_config(config));
    // Requests and replies travel directly over the graph: weight = d_G(v, central).
    let dm = instance.distances();
    for v in 0..n {
        if v != central {
            sim.set_link_weight(v, central, dm.dist(v, central));
        }
    }
    schedule_open_loop(&mut sim, workload);
    let outcome = sim.run();

    let mut records: Vec<OrderRecord> = Vec::new();
    let mut issued: Vec<Request> = Vec::new();
    let mut protocol_messages = 0u64;
    let mut completion_latency_sum = 0.0;
    let mut completion_count = 0u64;
    for v in 0..n {
        let node = sim.node(v);
        records.extend_from_slice(node.records());
        issued.extend(
            node.issued()
                .iter()
                .map(|&(id, time)| Request { id, node: v, time }),
        );
        protocol_messages += node.remote_messages();
        let issue_times: std::collections::HashMap<_, _> =
            node.issued().iter().map(|&(r, t)| (r, t)).collect();
        for &(req, done) in node.own_completions() {
            if let Some(&issue_time) = issue_times.get(&req) {
                completion_latency_sum += (done - issue_time).as_units_f64();
                completion_count += 1;
            }
        }
    }
    finish(
        ProtocolKind::Centralized,
        issued,
        records,
        protocol_messages,
        completion_latency_sum,
        completion_count,
        outcome.final_time,
        sim.stats().messages_delivered,
        outcome.events,
    )
}

#[allow(clippy::too_many_arguments)]
fn finish(
    protocol: ProtocolKind,
    mut issued: Vec<Request>,
    records: Vec<OrderRecord>,
    protocol_messages: u64,
    completion_latency_sum: f64,
    completion_count: u64,
    final_time: SimTime,
    total_messages: u64,
    sim_events: u64,
) -> QueuingOutcome {
    issued.sort_by_key(|r| (r.time, r.id));
    let schedule = RequestSchedule::from_requests(issued);
    let order = QueuingOrder::from_records(&records, &schedule)
        .expect("protocol produced an invalid queuing order");
    let total_latency = order.total_latency(&schedule).as_units_f64();
    let request_count = schedule.len().max(1);
    QueuingOutcome {
        protocol,
        total_latency,
        makespan: final_time.as_units_f64(),
        total_messages,
        sim_events,
        protocol_messages,
        hops_per_request: protocol_messages as f64 / request_count as f64,
        mean_completion_latency: if completion_count > 0 {
            completion_latency_sum / completion_count as f64
        } else {
            0.0
        },
        schedule,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn path_instance(n: usize) -> Instance {
        Instance::tree_only(netgraph::generators::path(n), 0)
    }

    #[test]
    fn arrow_cost_equals_sum_of_tree_distances_between_consecutive_requests() {
        // Equation (2) of the paper: with unit latencies and no concurrency-induced
        // deflection ambiguity, the total latency is the sum of tree distances between
        // consecutive requests in arrow's order.
        let instance = path_instance(6);
        let schedule = workload::sequential_round_robin(&[5, 2, 4], 3, 100.0);
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule),
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        // Order is issue order (sequential): 5 behind root(0), 2 behind 5, 4 behind 2.
        // d_T = 5 + 3 + 2 = 10.
        assert_eq!(outcome.total_latency, 10.0);
        assert_eq!(outcome.request_count(), 3);
        assert_eq!(outcome.protocol_messages, 10);
    }

    #[test]
    fn concurrent_burst_produces_valid_order_for_both_protocols() {
        let instance = Instance::complete_uniform(12, SpanningTreeKind::BalancedBinary);
        let nodes: Vec<NodeId> = (0..12).collect();
        let schedule = workload::one_shot_burst(&nodes, SimTime::ZERO);
        for protocol in [ProtocolKind::Arrow, ProtocolKind::Centralized] {
            let outcome = run(
                &instance,
                &Workload::OpenLoop(schedule.clone()),
                &RunConfig::analysis(protocol),
            );
            assert_eq!(outcome.request_count(), 12);
            assert_eq!(outcome.order.len(), 12);
            assert!(outcome.total_latency > 0.0);
        }
    }

    #[test]
    fn asynchronous_arrow_still_produces_a_valid_order() {
        let instance = Instance::complete_uniform(10, SpanningTreeKind::BalancedBinary);
        let schedule = workload::poisson(10, 1.0, 20.0, 3);
        let count = schedule.len();
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule),
            &RunConfig::analysis(ProtocolKind::Arrow).asynchronous(11),
        );
        assert_eq!(outcome.order.len(), count);
    }

    #[test]
    fn closed_loop_experiment_runs_for_both_protocols() {
        let instance = Instance::complete_uniform(8, SpanningTreeKind::BalancedBinary);
        let spec = ClosedLoopSpec {
            requests_per_node: 20,
            local_service_time: 0.05,
        };
        let arrow = run(
            &instance,
            &Workload::ClosedLoop(spec),
            &RunConfig::experiment(ProtocolKind::Arrow, spec.local_service_time),
        );
        let central = run(
            &instance,
            &Workload::ClosedLoop(spec),
            &RunConfig::experiment(ProtocolKind::Centralized, spec.local_service_time),
        );
        assert_eq!(arrow.request_count(), 8 * 20);
        assert_eq!(central.request_count(), 8 * 20);
        assert!(arrow.makespan > 0.0);
        assert!(central.makespan > 0.0);
        // The centralized home node handles every request serially; arrow distributes
        // the load, so with this many nodes its makespan should not be worse.
        assert!(arrow.makespan <= central.makespan * 1.5);
    }

    #[test]
    fn arrow_hops_per_request_are_low_under_high_contention() {
        // Figure 11's observation: under closed-loop contention, most requests find
        // their predecessor locally or nearby, so hops/request is small (< 2 even on
        // small systems; < 1 for larger ones in the paper).
        let instance = Instance::complete_uniform(16, SpanningTreeKind::BalancedBinary);
        let spec = ClosedLoopSpec {
            requests_per_node: 50,
            local_service_time: 0.05,
        };
        let outcome = run(
            &instance,
            &Workload::ClosedLoop(spec),
            &RunConfig::experiment(ProtocolKind::Arrow, spec.local_service_time),
        );
        assert!(
            outcome.hops_per_request < 3.0,
            "hops per request {}",
            outcome.hops_per_request
        );
    }

    #[test]
    fn centralized_order_matches_arrival_order_for_sequential_requests() {
        let instance = path_instance(5);
        let schedule = workload::sequential_round_robin(&[4, 1, 3], 3, 50.0);
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule),
            &RunConfig::analysis(ProtocolKind::Centralized),
        );
        let order_nodes: Vec<NodeId> = outcome
            .order
            .order()
            .iter()
            .map(|&id| outcome.schedule.get(id).unwrap().node)
            .collect();
        assert_eq!(order_nodes, vec![4, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "require acknowledgements")]
    fn closed_loop_without_acks_panics() {
        let instance = path_instance(3);
        let spec = ClosedLoopSpec::default();
        let mut cfg = RunConfig::analysis(ProtocolKind::Arrow);
        cfg.local_service_time = 0.05;
        run(&instance, &Workload::ClosedLoop(spec), &cfg);
    }

    #[test]
    #[should_panic(expected = "not an edge of the graph")]
    fn instance_rejects_tree_not_in_graph() {
        let graph = netgraph::generators::path(4);
        let bad_tree = RootedTree::from_tree_graph(&netgraph::generators::star(4), 0);
        Instance::new(graph, bad_tree);
    }
}
