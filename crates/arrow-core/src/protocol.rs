//! Protocol messages and shared node machinery.
//!
//! Both queuing protocols (arrow and the centralized baseline) exchange the message
//! types defined here over the [`desim`] simulator. The module also provides
//! [`ServiceQueue`], a small helper that models the per-message local service time of a
//! processor: the paper's analysis treats local computation as free, but its
//! *experiment* (Section 5) runs on real processors whose per-message CPU cost is what
//! makes the centralized protocol degrade linearly with system size. Modelling that
//! cost is required to reproduce the shape of Figure 10.

use crate::request::{ObjectId, RequestId};
use desim::{Context, SimDuration};
use netgraph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Messages exchanged by the queuing protocols (also used as external inputs).
///
/// Every message names the [`ObjectId`] it concerns: a directory serves many mobile
/// objects over one tree, and each object's queue is fully independent — a `queue()`
/// message for object `o` only ever reads or flips object `o`'s link pointers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProtoMsg {
    /// External input: the application at this node issues a queuing request.
    Issue {
        /// Pre-assigned request id (open-loop workloads).
        req: RequestId,
        /// Object being requested.
        obj: ObjectId,
    },
    /// The arrow `queue()` message, travelling towards the object's current sink and
    /// flipping that object's link pointers along the way.
    Queue {
        /// The request being queued.
        req: RequestId,
        /// Object being requested.
        obj: ObjectId,
        /// Node that issued the request (carried for the optional ack).
        origin: NodeId,
        /// Sender's recovery epoch (0 in fault-free runs); receivers drop the
        /// message when it is stale and fast-forward when it is ahead.
        epoch: u64,
    },
    /// Optional notification sent back to the requester once its request has found its
    /// predecessor ("the identity of the predecessor was returned to the processor",
    /// Section 5). Not part of the queuing protocol cost in the analysis.
    Found {
        /// The request that has been queued.
        req: RequestId,
        /// Object being requested.
        obj: ObjectId,
        /// Its predecessor in the object's total order.
        pred: RequestId,
        /// Sender's recovery epoch (0 in fault-free runs); stale acks are dropped.
        epoch: u64,
    },
    /// Fault detection signal: advance to recovery epoch `epoch` (reset link
    /// pointers to the initial tree orientation, regenerate tokens at the root,
    /// re-issue pending requests). Injected as an external input by the harness
    /// after each fault event; ignored when not newer than the local epoch.
    Epoch {
        /// The epoch to advance to.
        epoch: u64,
    },
    /// Centralized baseline: ask the central node to enqueue a request.
    CentralEnqueue {
        /// The request being queued.
        req: RequestId,
        /// Object being requested.
        obj: ObjectId,
        /// Node that issued it.
        origin: NodeId,
    },
    /// Centralized baseline: the central node's reply carrying the predecessor.
    CentralReply {
        /// The request that has been queued.
        req: RequestId,
        /// Object being requested.
        obj: ObjectId,
        /// Its predecessor in the object's total order.
        pred: RequestId,
    },
}

/// Which queuing protocol to run; used by harness configuration and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// The arrow protocol (path reversal on a spanning tree).
    Arrow,
    /// The centralized (home-based) protocol: a single node holds the queue tail.
    Centralized,
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolKind::Arrow => write!(f, "arrow"),
            ProtocolKind::Centralized => write!(f, "centralized"),
        }
    }
}

/// Timer tag used by [`ServiceQueue`].
pub const SERVICE_TIMER_TAG: u64 = 0xF00D;

/// A unit of work waiting for the node's "CPU": a message from `from`.
pub type WorkItem = (NodeId, ProtoMsg);

/// Models a processor that takes `service_time` to handle each protocol message.
///
/// With `service_time == 0` the queue is pass-through: work is handed back for
/// immediate processing. With a positive service time, arriving work is buffered and
/// released one item per `service_time`, which caps the node's throughput at
/// `1 / service_time` messages per time unit — the bottleneck behaviour of a real
/// processor that the centralized baseline's home node suffers from.
#[derive(Debug, Clone, Default)]
pub struct ServiceQueue {
    service_time: SimDuration,
    busy: bool,
    pending: VecDeque<WorkItem>,
    /// Total items that have passed through the queue.
    processed: u64,
}

impl ServiceQueue {
    /// Create a queue with the given per-item service time (in time units).
    pub fn new(service_time_units: f64) -> Self {
        ServiceQueue {
            service_time: SimDuration::from_units_f64(service_time_units),
            busy: false,
            pending: VecDeque::new(),
            processed: 0,
        }
    }

    /// True if the service time is zero (pass-through mode).
    pub fn is_passthrough(&self) -> bool {
        self.service_time.is_zero()
    }

    /// Number of items processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of items currently waiting.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// Offer a work item. Returns `Some(item)` if the caller should process it right
    /// now (pass-through mode); otherwise the item is buffered and a service timer is
    /// scheduled if the server was idle.
    pub fn offer(&mut self, ctx: &mut Context<ProtoMsg>, item: WorkItem) -> Option<WorkItem> {
        if self.is_passthrough() {
            self.processed += 1;
            return Some(item);
        }
        self.pending.push_back(item);
        if !self.busy {
            self.busy = true;
            ctx.set_timer(self.service_time, SERVICE_TIMER_TAG);
        }
        None
    }

    /// Handle a service-timer firing. Returns the item the caller must process now,
    /// and schedules the next service slot if more work is waiting.
    pub fn on_timer(&mut self, ctx: &mut Context<ProtoMsg>) -> Option<WorkItem> {
        let item = self.pending.pop_front();
        if item.is_some() {
            self.processed += 1;
        }
        if self.pending.is_empty() {
            self.busy = false;
        } else {
            ctx.set_timer(self.service_time, SERVICE_TIMER_TAG);
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;

    fn msg(i: u64) -> ProtoMsg {
        ProtoMsg::Issue {
            req: RequestId(i),
            obj: ObjectId::DEFAULT,
        }
    }

    #[test]
    fn passthrough_returns_items_immediately() {
        let mut q = ServiceQueue::new(0.0);
        let mut ctx = Context::new(0, SimTime::ZERO);
        assert!(q.is_passthrough());
        let out = q.offer(&mut ctx, (1, msg(1)));
        assert_eq!(out, Some((1, msg(1))));
        assert_eq!(q.processed(), 1);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn positive_service_time_buffers_and_schedules() {
        let mut q = ServiceQueue::new(0.5);
        let mut ctx = Context::new(0, SimTime::ZERO);
        assert!(q.offer(&mut ctx, (1, msg(1))).is_none());
        assert!(q.offer(&mut ctx, (2, msg(2))).is_none());
        assert_eq!(q.backlog(), 2);
        assert_eq!(q.processed(), 0);

        // First timer releases the first item and schedules another slot.
        let mut ctx2 = Context::new(0, SimTime::from_units(1));
        let first = q.on_timer(&mut ctx2);
        assert_eq!(first, Some((1, msg(1))));
        assert_eq!(q.backlog(), 1);

        let mut ctx3 = Context::new(0, SimTime::from_units(2));
        let second = q.on_timer(&mut ctx3);
        assert_eq!(second, Some((2, msg(2))));
        assert_eq!(q.backlog(), 0);
        assert_eq!(q.processed(), 2);

        // Spurious timer with empty queue is harmless.
        let mut ctx4 = Context::new(0, SimTime::from_units(3));
        assert!(q.on_timer(&mut ctx4).is_none());
    }

    #[test]
    fn protocol_kind_display() {
        assert_eq!(ProtocolKind::Arrow.to_string(), "arrow");
        assert_eq!(ProtocolKind::Centralized.to_string(), "centralized");
    }
}
