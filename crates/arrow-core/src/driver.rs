//! One interface over the three execution tiers.
//!
//! The repo runs the arrow protocol in three independent implementations — the
//! discrete-event simulator ([`mod@crate::run`]), the in-process thread runtime
//! ([`crate::live::ArrowRuntime`]) and the socket runtime (the `arrow-net`
//! crate) — and nothing stops them drifting apart unless something runs the *same
//! workload* through all of them and holds the results to the *same contract*.
//! [`Driver`] is that seam: "run this [`RequestSchedule`] on this [`Instance`] and
//! hand back a [`QueuingOutcome`], or a typed [`RunError`]". The conformance
//! harness (`arrow-conformance`) sweeps seeded cases over every applicable driver
//! and checks a shared invariant suite on each outcome.
//!
//! Two drivers live here because they need nothing beyond this crate:
//! [`SimDriver`] (the simulator) and [`ThreadDriver`] (the thread runtime). The
//! socket tier's `NetDriver` lives in `arrow-conformance`, which may depend on
//! `arrow-net`.
//!
//! ## What the live tiers can and cannot replay
//!
//! The simulator replays a schedule *exactly*: issue times are virtual, so the
//! outcome's schedule is the input schedule. The live tiers run on wall clocks and
//! assign their own request ids, so a schedule is replayed as a **concurrency
//! shape**: for every `(node, object)` pair, that node issues the pair's requests
//! in schedule order (blocking on each acquire), while distinct pairs proceed in
//! parallel. The reconstructed outcome therefore has the same per-node/per-object
//! request *multiset* as the input but fresh ids and wall-clock times — which is
//! exactly what the conformance invariants need (order validity, exactly-once
//! queuing, token conservation), and exactly what latency-bound invariants must
//! not be applied to (the harness only checks those on [`SimDriver`] outcomes).

use crate::live::ArrowRuntime;
use crate::protocol::ProtocolKind;
use crate::request::{ObjectId, RequestSchedule};
use crate::run::{
    outcome_from_records, run_schedule_checked, Instance, QueuingOutcome, RunConfig, RunError,
};
use arrow_trace::{NoProbe, Probe};
use desim::SimTime;
use netgraph::NodeId;
use std::collections::BTreeMap;
use std::time::Duration;

/// Default live-tier grant timeout: how long a replay worker waits for one token
/// grant before declaring the grant chain wedged (a lost token is exactly the
/// class of protocol bug the conformance harness exists to catch — it must
/// surface as a typed [`RunError::GrantTimeout`], not hang the sweep).
/// Conformance cases complete in milliseconds; half a minute of silence on an
/// instant-latency mesh is a deadlock, not contention.
///
/// Per-run override: [`RunConfig::with_grant_timeout_ms`] — the drivers read
/// [`RunConfig::grant_timeout`], and fault sweeps lower it so a genuinely lost
/// token fails fast.
pub const GRANT_TIMEOUT: Duration = Duration::from_millis(RunConfig::DEFAULT_GRANT_TIMEOUT_MS);

/// Run a [`RequestSchedule`] on an [`Instance`] in one execution tier and return
/// the outcome with failures as data.
///
/// Implementations must never abort the process on a protocol failure: an invalid
/// order, a dropped protocol-violating message or a transport failure comes back
/// as a [`RunError`] so a differential sweep can record, shrink and replay it.
pub trait Driver {
    /// Short stable name of the tier (used in reports and replay files).
    fn name(&self) -> &'static str;

    /// True if this driver can execute the given configuration (e.g. the live
    /// tiers only implement the arrow protocol, not the centralized baseline).
    fn supports(&self, config: &RunConfig) -> bool;

    /// Execute the schedule and assemble a validated outcome.
    fn run(
        &self,
        instance: &Instance,
        schedule: &RequestSchedule,
        config: &RunConfig,
    ) -> Result<QueuingOutcome, RunError>;
}

/// Tier 1: the deterministic discrete-event simulator ([`run_schedule_checked`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimDriver;

impl Driver for SimDriver {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn supports(&self, _config: &RunConfig) -> bool {
        true
    }

    fn run(
        &self,
        instance: &Instance,
        schedule: &RequestSchedule,
        config: &RunConfig,
    ) -> Result<QueuingOutcome, RunError> {
        run_schedule_checked(instance, schedule, config)
    }
}

/// Group a schedule into per-`(node, object)` acquire counts — the replay unit of
/// the live tiers (each pair's acquires run sequentially on one worker thread,
/// distinct pairs run concurrently). Public so out-of-crate drivers (the socket
/// tier's `NetDriver`) replay schedules exactly the way [`ThreadDriver`] does.
pub fn acquire_sequences(schedule: &RequestSchedule) -> BTreeMap<(NodeId, ObjectId), usize> {
    let mut seqs: BTreeMap<(NodeId, ObjectId), usize> = BTreeMap::new();
    for r in schedule.requests() {
        *seqs.entry((r.node, r.obj)).or_insert(0) += 1;
    }
    seqs
}

/// Tier 2: the in-process thread runtime ([`ArrowRuntime`]) — one OS thread per
/// node, std mpsc links, real token passing. Runs on the instance's spanning tree
/// (protocol traffic is tree-only in every tier).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadDriver;

impl ThreadDriver {
    /// Like [`Driver::run`], with a recording probe per node (typically
    /// [`arrow_trace::TraceRecorder::wall_probe`]) so the replay leaves a causal
    /// event trace behind. The runtime's node threads — and therefore the probes,
    /// which flush on drop — exit inside this call, so the recorder holds every
    /// event once this returns.
    pub fn run_probed<P: Probe>(
        &self,
        instance: &Instance,
        schedule: &RequestSchedule,
        config: &RunConfig,
        probe_for: impl FnMut(NodeId) -> P,
    ) -> Result<QueuingOutcome, RunError> {
        debug_assert!(self.supports(config));
        if let Some(r) = schedule
            .requests()
            .iter()
            .find(|r| r.node >= instance.node_count())
        {
            return Err(RunError::Transport {
                node: r.node,
                description: format!("schedule names node {} outside the instance", r.node),
            });
        }
        let k = schedule.object_id_bound();
        let grant_timeout = config.grant_timeout();
        let rt = ArrowRuntime::spawn_multi_probed(instance.tree(), k, probe_for);
        let mut workers = Vec::new();
        for ((node, obj), count) in acquire_sequences(schedule) {
            let h = rt.handle(node);
            workers.push(std::thread::spawn(move || -> Result<(), RunError> {
                for _ in 0..count {
                    let req = h.acquire_object_timeout(obj, grant_timeout).ok_or(
                        RunError::GrantTimeout {
                            node,
                            obj,
                            waited_ms: grant_timeout.as_millis() as u64,
                        },
                    )?;
                    h.release_object(obj, req);
                }
                Ok(())
            }));
        }
        // Join every worker before shutting down, collecting the first failure —
        // an early return here would drop the runtime under still-blocked workers.
        let mut first_failure: Option<RunError> = None;
        for w in workers {
            match w.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first_failure.get_or_insert(e);
                }
                Err(_) => {
                    first_failure.get_or_insert(RunError::Transport {
                        node: 0,
                        description: "a replay worker thread panicked".to_string(),
                    });
                }
            }
        }
        let report = rt.shutdown_report();
        if let Some(failure) = first_failure {
            return Err(failure);
        }
        let (queue_msgs, token_msgs, _) = report.stats();
        let makespan = report
            .records()
            .iter()
            .map(|r| r.informed_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        outcome_from_records(
            ProtocolKind::Arrow,
            report.schedule().requests().to_vec(),
            report.records().to_vec(),
            queue_msgs,
            queue_msgs + token_msgs,
            makespan,
        )
    }
}

impl Driver for ThreadDriver {
    fn name(&self) -> &'static str {
        "thread"
    }

    fn supports(&self, config: &RunConfig) -> bool {
        config.protocol == ProtocolKind::Arrow
    }

    fn run(
        &self,
        instance: &Instance,
        schedule: &RequestSchedule,
        config: &RunConfig,
    ) -> Result<QueuingOutcome, RunError> {
        self.run_probed(instance, schedule, config, |_| NoProbe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use netgraph::spanning::SpanningTreeKind;

    #[test]
    fn sim_driver_matches_run_schedule() {
        let instance = Instance::complete_uniform(8, SpanningTreeKind::BalancedBinary);
        let schedule = workload::poisson(8, 1.0, 8.0, 3);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let via_driver = SimDriver.run(&instance, &schedule, &cfg).unwrap();
        let direct = crate::run::run_schedule(&instance, &schedule, &cfg);
        assert_eq!(via_driver.order.order(), direct.order.order());
        assert_eq!(via_driver.total_latency, direct.total_latency);
    }

    #[test]
    fn thread_driver_replays_the_request_multiset() {
        let instance = Instance::complete_uniform(6, SpanningTreeKind::BalancedBinary);
        let triples: Vec<(NodeId, SimTime, ObjectId)> = (0..12)
            .map(|i| {
                (
                    i % 6,
                    SimTime::from_units(i as u64),
                    ObjectId((i % 2) as u32),
                )
            })
            .collect();
        let schedule = RequestSchedule::from_object_pairs(&triples);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let outcome = ThreadDriver.run(&instance, &schedule, &cfg).unwrap();
        assert_eq!(outcome.request_count(), 12);
        assert_eq!(outcome.object_count(), 2);
        // Same per-(node, object) multiset, fresh ids.
        assert_eq!(
            acquire_sequences(&outcome.schedule),
            acquire_sequences(&schedule)
        );
        let total: usize = outcome.orders.iter().map(|(_, o)| o.len()).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn thread_driver_rejects_out_of_range_nodes_as_typed_errors() {
        let instance = Instance::complete_uniform(4, SpanningTreeKind::BalancedBinary);
        let schedule = RequestSchedule::from_pairs(&[(9, SimTime::ZERO)]);
        let cfg = RunConfig::analysis(ProtocolKind::Arrow);
        let err = ThreadDriver.run(&instance, &schedule, &cfg).unwrap_err();
        assert!(matches!(err, RunError::Transport { node: 9, .. }));
    }

    #[test]
    fn thread_driver_does_not_support_the_centralized_baseline() {
        assert!(!ThreadDriver.supports(&RunConfig::analysis(ProtocolKind::Centralized)));
        assert!(SimDriver.supports(&RunConfig::analysis(ProtocolKind::Centralized)));
    }
}
