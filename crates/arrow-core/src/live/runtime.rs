//! One-thread-per-node arrow runtime over std::sync::mpsc channels.
//!
//! Each node thread runs the arrow automaton (link pointer + path reversal) and a
//! token manager: when a node learns that request `succ` has been queued behind its
//! own request `pred`, it forwards the exclusion token to `succ`'s origin as soon as
//! the local application has released `pred`. The initial token sits at the tree root
//! (holding the virtual request `r0`), already released.

use crate::request::RequestId;
use netgraph::{NodeId, RootedTree};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Messages exchanged between node threads (and commands from handles).
#[derive(Debug, Clone)]
enum LiveMsg {
    /// The arrow `queue()` message.
    Queue { req: RequestId, origin: NodeId },
    /// The exclusion token, granted to the node that issued `req`.
    Token { req: RequestId },
    /// Application command: acquire the token; reply on the given channel once held.
    Acquire { reply: Sender<RequestId> },
    /// Application command: release the token held for `req`.
    Release { req: RequestId },
    /// Stop the node thread.
    Shutdown,
}

/// Counters shared by all node threads.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Arrow `queue()` messages sent between different nodes.
    pub queue_messages: AtomicU64,
    /// Token transfer messages sent between different nodes.
    pub token_messages: AtomicU64,
    /// Total acquisitions granted.
    pub acquisitions: AtomicU64,
}

impl RuntimeStats {
    /// Snapshot of (queue messages, token messages, acquisitions).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.queue_messages.load(Ordering::Relaxed),
            self.token_messages.load(Ordering::Relaxed),
            self.acquisitions.load(Ordering::Relaxed),
        )
    }
}

/// Per-own-request token bookkeeping at the issuing node.
#[derive(Debug, Default)]
struct TokenState {
    /// The token for this request has been (or never needed to be) released.
    released: bool,
    /// The successor of this request, once known: `(request, origin node)`.
    successor: Option<(RequestId, NodeId)>,
}

struct NodeState {
    me: NodeId,
    link: NodeId,
    last_id: RequestId,
    /// Outstanding local acquires: request id -> reply channel.
    waiting: HashMap<RequestId, Sender<RequestId>>,
    /// Token bookkeeping for requests issued by this node (keyed by request id).
    tokens: HashMap<RequestId, TokenState>,
    senders: Vec<Sender<(NodeId, LiveMsg)>>,
    stats: Arc<RuntimeStats>,
    next_seq: u64,
    total_nodes: u64,
}

impl NodeState {
    fn send(&self, to: NodeId, msg: LiveMsg) {
        if let LiveMsg::Queue { .. } = msg {
            if to != self.me {
                self.stats.queue_messages.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let LiveMsg::Token { .. } = msg {
            if to != self.me {
                self.stats.token_messages.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Sending to self is delivered through the same channel to preserve ordering.
        let _ = self.senders[to].send((self.me, msg));
    }

    fn fresh_request_id(&mut self) -> RequestId {
        let id = 1 + self.me as u64 + self.next_seq * self.total_nodes;
        self.next_seq += 1;
        RequestId(id)
    }

    /// Issue a queuing request for the local application.
    fn handle_acquire(&mut self, reply: Sender<RequestId>) {
        let req = self.fresh_request_id();
        self.waiting.insert(req, reply);
        self.tokens.insert(req, TokenState::default());
        let previous = self.last_id;
        self.last_id = req;
        if self.link == self.me {
            // Local sink: req is queued directly behind our previous request.
            self.queuing_complete(previous, req, self.me);
        } else {
            let target = self.link;
            self.link = self.me;
            self.send(
                target,
                LiveMsg::Queue {
                    req,
                    origin: self.me,
                },
            );
        }
    }

    /// Arrow path reversal.
    fn handle_queue(&mut self, from: NodeId, req: RequestId, origin: NodeId) {
        let old_link = self.link;
        self.link = from;
        if old_link == self.me {
            let pred = self.last_id;
            self.queuing_complete(pred, req, origin);
        } else {
            self.send(old_link, LiveMsg::Queue { req, origin });
        }
    }

    /// Request `succ` (from `origin`) has been queued behind `pred`, which lives here.
    fn queuing_complete(&mut self, pred: RequestId, succ: RequestId, origin: NodeId) {
        if pred.is_root() {
            // The token has been sitting at the initial root, already free.
            self.grant(succ, origin);
            return;
        }
        let state = self.tokens.entry(pred).or_default();
        if state.released {
            self.tokens.remove(&pred);
            self.grant(succ, origin);
        } else {
            state.successor = Some((succ, origin));
        }
    }

    /// Hand the token to the node that issued `req`.
    fn grant(&mut self, req: RequestId, origin: NodeId) {
        if origin == self.me {
            self.handle_token(req);
        } else {
            self.send(origin, LiveMsg::Token { req });
        }
    }

    /// The token arrived for our request `req`: wake the waiting application.
    fn handle_token(&mut self, req: RequestId) {
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        if let Some(reply) = self.waiting.remove(&req) {
            let _ = reply.send(req);
        }
    }

    /// The application released the token it held for `req`.
    fn handle_release(&mut self, req: RequestId) {
        let state = self.tokens.entry(req).or_default();
        if let Some((succ, origin)) = state.successor.take() {
            self.tokens.remove(&req);
            self.grant(succ, origin);
        } else {
            state.released = true;
        }
    }
}

/// The live arrow runtime: one thread per node of a rooted spanning tree.
pub struct ArrowRuntime {
    senders: Vec<Sender<(NodeId, LiveMsg)>>,
    threads: Vec<JoinHandle<()>>,
    stats: Arc<RuntimeStats>,
    n: usize,
}

impl ArrowRuntime {
    /// Spawn the runtime over the given rooted spanning tree. The tree root initially
    /// holds the token.
    pub fn spawn(tree: &RootedTree) -> Self {
        let n = tree.node_count();
        let stats = Arc::new(RuntimeStats::default());
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<(NodeId, LiveMsg)>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut threads = Vec::with_capacity(n);
        for (v, rx) in receivers.into_iter().enumerate() {
            let root = tree.root();
            let link = if v == root {
                v
            } else {
                tree.parent(v).expect("non-root node has a parent")
            };
            let mut state = NodeState {
                me: v,
                link,
                last_id: if v == root {
                    RequestId::ROOT
                } else {
                    // Never read before this node issues or completes a request:
                    // a non-root node can only become a sink by issuing a request.
                    RequestId::ROOT
                },
                waiting: HashMap::new(),
                tokens: HashMap::new(),
                senders: senders.clone(),
                stats: Arc::clone(&stats),
                next_seq: 0,
                total_nodes: n as u64,
            };
            let handle = std::thread::Builder::new()
                .name(format!("arrow-node-{v}"))
                .spawn(move || {
                    while let Ok((from, msg)) = rx.recv() {
                        match msg {
                            LiveMsg::Shutdown => break,
                            LiveMsg::Queue { req, origin } => state.handle_queue(from, req, origin),
                            LiveMsg::Token { req } => state.handle_token(req),
                            LiveMsg::Acquire { reply } => state.handle_acquire(reply),
                            LiveMsg::Release { req } => state.handle_release(req),
                        }
                    }
                })
                .expect("failed to spawn node thread");
            threads.push(handle);
        }
        ArrowRuntime {
            senders,
            threads,
            stats,
            n,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Shared runtime statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// A handle for the application running at node `v`.
    pub fn handle(&self, v: NodeId) -> NodeHandle {
        assert!(v < self.n, "node {v} out of range");
        NodeHandle {
            node: v,
            sender: self.senders[v].clone(),
        }
    }

    /// Stop all node threads and wait for them to finish.
    pub fn shutdown(mut self) {
        for (v, tx) in self.senders.iter().enumerate() {
            let _ = tx.send((v, LiveMsg::Shutdown));
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The application-facing handle of one node: blocking token acquire/release.
#[derive(Debug, Clone)]
pub struct NodeHandle {
    node: NodeId,
    sender: Sender<(NodeId, LiveMsg)>,
}

impl NodeHandle {
    /// This handle's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Issue a queuing request and block until this node holds the token.
    /// Returns the id of the granted request, which must be passed to [`release`].
    ///
    /// [`release`]: NodeHandle::release
    pub fn acquire(&self) -> RequestId {
        let (reply_tx, reply_rx) = channel();
        self.sender
            .send((self.node, LiveMsg::Acquire { reply: reply_tx }))
            .expect("runtime has shut down");
        reply_rx.recv().expect("runtime has shut down")
    }

    /// Release the token held for `req`, letting it move on to the successor.
    pub fn release(&self, req: RequestId) {
        self.sender
            .send((self.node, LiveMsg::Release { req }))
            .expect("runtime has shut down");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    fn tree(n: usize) -> RootedTree {
        RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0)
    }

    #[test]
    fn single_acquire_release_at_root() {
        let rt = ArrowRuntime::spawn(&tree(3));
        let h = rt.handle(0);
        let req = h.acquire();
        h.release(req);
        assert_eq!(rt.stats().snapshot().2, 1);
        rt.shutdown();
    }

    #[test]
    fn remote_acquire_gets_the_token() {
        let rt = ArrowRuntime::spawn(&tree(7));
        let h = rt.handle(6);
        let req = h.acquire();
        h.release(req);
        let (queue_msgs, token_msgs, acqs) = rt.stats().snapshot();
        assert_eq!(acqs, 1);
        assert!(queue_msgs >= 1, "request from a leaf must cross links");
        assert!(token_msgs >= 1, "token must travel to the leaf");
        rt.shutdown();
    }

    #[test]
    fn sequential_acquires_from_many_nodes() {
        let rt = ArrowRuntime::spawn(&tree(7));
        for v in 0..7 {
            let h = rt.handle(v);
            let req = h.acquire();
            h.release(req);
        }
        assert_eq!(rt.stats().snapshot().2, 7);
        rt.shutdown();
    }

    #[test]
    fn concurrent_acquires_all_complete() {
        let rt = Arc::new(ArrowRuntime::spawn(&tree(15)));
        let mut joins = Vec::new();
        for v in 0..15 {
            let h = rt.handle(v);
            joins.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let req = h.acquire();
                    h.release(req);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(rt.stats().snapshot().2, 150);
        Arc::try_unwrap(rt).ok().unwrap().shutdown();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn handle_for_missing_node_panics() {
        let rt = ArrowRuntime::spawn(&tree(3));
        let _ = rt.handle(9);
    }
}
