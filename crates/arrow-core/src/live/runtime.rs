//! One-thread-per-node arrow runtime over std::sync::mpsc channels, serving `K`
//! mobile objects over one spanning tree.
//!
//! Each node thread multiplexes `K` independent arrow automata (per-object link
//! pointer + path reversal) over a single inbound channel, plus a per-object token
//! manager: when a node learns that request `succ` has been queued behind its own
//! request `pred` in object `o`'s queue, it forwards object `o`'s exclusion token to
//! `succ`'s origin as soon as the local application has released `pred`. Each
//! object's initial token sits at the tree root (holding that object's virtual
//! request `r0`), already released.
//!
//! The protocol logic itself lives in [`super::core::ArrowCore`], shared with the
//! socket runtime (`arrow-net`); this module only supplies the transport: mpsc
//! channels, node threads, and the map from pending requests to application wakeups.

use super::core::{ArrowCore, CoreAction};
use crate::fault::{FaultAction, FaultSchedule};
use crate::order::{OrderError, OrderRecord, QueuingOrder};
use crate::request::{ObjectId, Request, RequestId, RequestSchedule};
use arrow_trace::{Metric, MetricsRegistry, MetricsSnapshot, NoProbe, Probe, ProbeEvent};
use desim::{SimTime, SUBTICKS_PER_UNIT};
use netgraph::{NodeId, RootedTree};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Messages exchanged between node threads (and commands from handles).
#[derive(Debug, Clone)]
enum LiveMsg {
    /// The arrow `queue()` message for one object, stamped with the sender's
    /// recovery epoch.
    Queue {
        obj: ObjectId,
        req: RequestId,
        origin: NodeId,
        epoch: u64,
    },
    /// Object `obj`'s exclusion token, granted to the node that issued `req`,
    /// stamped with the sender's recovery epoch.
    Token {
        obj: ObjectId,
        req: RequestId,
        epoch: u64,
    },
    /// Application command: acquire `obj`'s token; reply on the channel once held.
    Acquire {
        obj: ObjectId,
        reply: Sender<RequestId>,
    },
    /// Application command: release `obj`'s token held for `req`.
    Release { obj: ObjectId, req: RequestId },
    /// Fault injection: the node crashes, losing volatile protocol state and
    /// failing local waiters promptly. Until restarted it ignores all traffic.
    Crash,
    /// Fault injection: the crashed node comes back up with freshly initialised
    /// protocol state (it re-learns the current epoch from the next detection
    /// broadcast or from live traffic).
    Restart,
    /// Fault detection broadcast: advance to recovery epoch `epoch`.
    Epoch { epoch: u64 },
    /// Stop the node thread.
    Shutdown,
}

/// Counters shared by all node threads: a façade over the cross-tier
/// [`MetricsRegistry`] schema (`arrow-trace`), so the thread tier reports under
/// the same metric names as the simulator harness and the socket tier.
///
/// Queue messages land in [`Metric::QueueFrames`], token transfers in
/// [`Metric::TokenFrames`], grants in [`Metric::Acquisitions`], blocked-link and
/// crashed-node discards in [`Metric::FramesDropped`], and stale-epoch
/// rejections (summed from the cores at shutdown) in
/// [`Metric::StaleEpochDrops`].
#[derive(Debug, Default)]
pub struct RuntimeStats {
    registry: MetricsRegistry,
}

impl RuntimeStats {
    /// The shared metrics registry backing these statistics.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A full snapshot over the shared cross-tier metric schema.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Snapshot of (queue messages, token messages, acquisitions).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.registry.get(Metric::QueueFrames),
            self.registry.get(Metric::TokenFrames),
            self.registry.get(Metric::Acquisitions),
        )
    }
}

/// What one node thread hands back when it stops: the protocol history this node
/// observed, in the same shape the socket tier journals.
#[derive(Debug, Default)]
struct NodeJournal {
    /// Requests issued here, with wall-clock issue times since the runtime epoch.
    issued: Vec<Request>,
    /// Successor notifications observed here (this node held the predecessor).
    records: Vec<OrderRecord>,
}

struct NodeState<P: Probe> {
    me: NodeId,
    /// The shared per-node protocol automaton (probed when the runtime was
    /// spawned with [`ArrowRuntime::spawn_multi_probed`]).
    core: ArrowCore<P>,
    /// True while a fault injection has this node down: all traffic is discarded
    /// and local acquires fail promptly until a [`LiveMsg::Restart`].
    crashed: bool,
    /// Scratch buffer for core actions (reused across events; steady state allocates
    /// nothing).
    actions: Vec<CoreAction>,
    /// Outstanding local acquires: (object, request id) -> reply channel.
    waiting: HashMap<(ObjectId, RequestId), Sender<RequestId>>,
    senders: Vec<Sender<(NodeId, LiveMsg)>>,
    /// Tree links currently severed by fault injection, as `(min, max)` node
    /// pairs; sends across them are dropped (both directions).
    blocked: Arc<Mutex<HashSet<(NodeId, NodeId)>>>,
    stats: Arc<RuntimeStats>,
    /// Shared runtime start instant: issue/record times are measured from it.
    started: Instant,
    journal: NodeJournal,
}

impl<P: Probe> NodeState<P> {
    fn now(&self) -> SimTime {
        let units = self.started.elapsed().as_secs_f64();
        SimTime::from_subticks((units * SUBTICKS_PER_UNIT as f64) as u64)
    }

    fn send(&self, to: NodeId, msg: LiveMsg) {
        // Sending to self is delivered through the same channel to preserve ordering.
        if to != self.me {
            let key = (self.me.min(to), self.me.max(to));
            if self
                .blocked
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .contains(&key)
            {
                self.stats.registry.inc(Metric::FramesDropped);
                return;
            }
        }
        let _ = self.senders[to].send((self.me, msg));
    }

    /// Translate the core's pending actions into channel sends and wakeups.
    fn apply_actions(&mut self) {
        let mut actions = std::mem::take(&mut self.actions);
        let mut orphaned: Vec<(ObjectId, RequestId)> = Vec::new();
        for action in actions.drain(..) {
            match action {
                CoreAction::SendQueue {
                    to,
                    obj,
                    req,
                    origin,
                    epoch,
                } => {
                    // The core never queues or grants to itself (local cases surface
                    // as Queued/Granted), so every send is inter-node.
                    self.stats.registry.inc(Metric::QueueFrames);
                    self.send(
                        to,
                        LiveMsg::Queue {
                            obj,
                            req,
                            origin,
                            epoch,
                        },
                    );
                }
                CoreAction::SendToken {
                    to,
                    obj,
                    req,
                    epoch,
                } => {
                    self.stats.registry.inc(Metric::TokenFrames);
                    self.send(to, LiveMsg::Token { obj, req, epoch });
                }
                CoreAction::Granted { obj, req } => {
                    self.stats.registry.inc(Metric::Acquisitions);
                    let delivered = self
                        .waiting
                        .remove(&(obj, req))
                        .is_some_and(|reply| reply.send(req).is_ok());
                    if !delivered {
                        orphaned.push((obj, req));
                    }
                }
                CoreAction::Queued {
                    obj,
                    pred,
                    succ,
                    origin,
                    epoch,
                } => {
                    // Journal the successor notification so the run can be held to
                    // the same per-object order validation as the other tiers
                    // (the token-passing view is additionally verified through
                    // CriticalSectionLog by tests that use it).
                    self.journal.records.push(OrderRecord {
                        predecessor: pred,
                        successor: succ,
                        obj,
                        at_node: self.me,
                        informed_at: self.now(),
                        epoch,
                    });
                    let _ = origin;
                }
            }
        }
        self.actions = actions;
        // A grant nobody can receive — the waiter timed out and dropped its
        // reply channel, or a crash cleared the waiting map while the request
        // lived on in the token chain — must not wedge the token here forever:
        // release it on the vanished waiter's behalf so the queue keeps
        // draining. (Recursion is bounded: each pass consumes its orphans.)
        if !orphaned.is_empty() {
            for (obj, req) in orphaned {
                self.stats.registry.inc(Metric::OrphanReleases);
                self.core.probe_mut().record(ProbeEvent::OrphanRelease {
                    obj: obj.0,
                    req: req.0,
                });
                self.core.on_release(obj, req, &mut self.actions);
            }
            self.apply_actions();
        }
    }

    /// Feed one message into the node's state. Core actions accumulate in
    /// `self.actions`; the event loop applies them once per drained batch (see
    /// [`ArrowCore`]'s batching contract).
    fn handle(&mut self, from: NodeId, msg: LiveMsg) {
        if self.crashed {
            match msg {
                LiveMsg::Restart => self.crashed = false,
                // Dropping the reply sender errors the caller's recv immediately:
                // an acquire against a crashed node fails promptly, it does not
                // hang until a timeout.
                LiveMsg::Acquire { reply, .. } => drop(reply),
                _ => {
                    self.stats.registry.inc(Metric::FramesDropped);
                }
            }
            return;
        }
        match msg {
            LiveMsg::Queue {
                obj,
                req,
                origin,
                epoch,
            } => self
                .core
                .on_queue(from, obj, req, origin, epoch, &mut self.actions),
            LiveMsg::Token { obj, req, epoch } => {
                self.core.on_token(obj, req, epoch, &mut self.actions)
            }
            LiveMsg::Acquire { obj, reply } => {
                let time = self.now();
                self.stats.registry.inc(Metric::RequestsIssued);
                let req = self.core.acquire(obj, &mut self.actions);
                // Register the waiter before applying actions: the grant may already
                // be among them (local sink whose predecessor was released).
                self.waiting.insert((obj, req), reply);
                self.journal.issued.push(Request {
                    id: req,
                    node: self.me,
                    time,
                    obj,
                });
            }
            LiveMsg::Release { obj, req } => self.core.on_release(obj, req, &mut self.actions),
            LiveMsg::Crash => {
                self.crashed = true;
                // Volatile protocol state dies with the node; the request-id
                // counter survives (stable storage) so post-restart ids never
                // collide with pre-crash ones. Dropping the reply senders fails
                // every in-flight local acquire promptly.
                self.core.reboot();
                self.waiting.clear();
                self.actions.clear();
            }
            LiveMsg::Restart => {}
            LiveMsg::Epoch { epoch } => {
                let before = self.core.epoch();
                self.core.on_epoch(epoch, &mut self.actions);
                if self.core.epoch() > before {
                    self.stats.registry.inc(Metric::EpochsAdopted);
                }
            }
            LiveMsg::Shutdown => unreachable!("handled by the event loop"),
        }
    }
}

/// Maximum messages one event-loop cycle drains before translating the
/// accumulated core actions into channel sends. Bounds how long a grant can sit
/// staged under sustained load while still letting bursts batch. Public so the
/// socket tier uses the same batching policy (see the "Batched draining"
/// contract in [`super::core`]).
pub const EVENT_BATCH: usize = 256;

/// The live arrow runtime: one thread per node of a rooted spanning tree, serving
/// `K` objects whose per-object arrow state the node threads multiplex.
pub struct ArrowRuntime {
    senders: Vec<Sender<(NodeId, LiveMsg)>>,
    threads: Vec<JoinHandle<NodeJournal>>,
    stats: Arc<RuntimeStats>,
    blocked: Arc<Mutex<HashSet<(NodeId, NodeId)>>>,
    n: usize,
    k: usize,
}

impl ArrowRuntime {
    /// Spawn a single-object runtime over the given rooted spanning tree. The tree
    /// root initially holds the (only) token.
    pub fn spawn(tree: &RootedTree) -> Self {
        ArrowRuntime::spawn_multi(tree, 1)
    }

    /// Spawn the runtime over the given rooted spanning tree, serving `objects`
    /// independent mobile objects. Every object's token initially sits at the tree
    /// root, already released (each object's queue starts at its own virtual request
    /// `r0` held by the root).
    ///
    /// # Panics
    /// If `objects` is zero.
    pub fn spawn_multi(tree: &RootedTree, objects: usize) -> Self {
        ArrowRuntime::spawn_multi_probed(tree, objects, |_| NoProbe)
    }

    /// Like [`spawn_multi`], with a recording probe per node (typically
    /// [`arrow_trace::TraceRecorder::wall_probe`]): every node's protocol
    /// transitions — plus the runtime-level orphaned-grant self-releases — are
    /// reported to `probe_for(v)`'s recorder. Probes are dropped (flushed) when
    /// the node threads exit, so a [`shutdown_report`] precedes any complete
    /// trace read.
    ///
    /// [`spawn_multi`]: ArrowRuntime::spawn_multi
    /// [`shutdown_report`]: ArrowRuntime::shutdown_report
    ///
    /// # Panics
    /// If `objects` is zero.
    pub fn spawn_multi_probed<P: Probe>(
        tree: &RootedTree,
        objects: usize,
        mut probe_for: impl FnMut(NodeId) -> P,
    ) -> Self {
        assert!(objects > 0, "a directory serves at least one object");
        let n = tree.node_count();
        let stats = Arc::new(RuntimeStats::default());
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<(NodeId, LiveMsg)>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let started = Instant::now();
        let blocked: Arc<Mutex<HashSet<(NodeId, NodeId)>>> = Arc::default();
        let mut threads = Vec::with_capacity(n);
        for (v, rx) in receivers.into_iter().enumerate() {
            let mut state = NodeState {
                me: v,
                core: ArrowCore::for_tree_with_probe(v, tree, objects, probe_for(v)),
                crashed: false,
                actions: Vec::new(),
                waiting: HashMap::new(),
                senders: senders.clone(),
                blocked: Arc::clone(&blocked),
                stats: Arc::clone(&stats),
                started,
                journal: NodeJournal::default(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("arrow-node-{v}"))
                .spawn(move || {
                    // Batched draining: take one message (blocking), then drain
                    // whatever else is already queued (bounded), and only then
                    // translate the accumulated core actions into sends — a burst
                    // of protocol traffic costs one apply pass, not one per
                    // message.
                    let mut stop = false;
                    while !stop {
                        let Ok(first) = rx.recv() else { break };
                        let mut next = Some(first);
                        let mut drained = 0;
                        while let Some((from, msg)) = next.take() {
                            if let LiveMsg::Shutdown = msg {
                                stop = true;
                                break;
                            }
                            state.handle(from, msg);
                            drained += 1;
                            if drained >= EVENT_BATCH {
                                break;
                            }
                            next = rx.try_recv().ok();
                        }
                        state.apply_actions();
                    }
                    state
                        .stats
                        .registry
                        .add(Metric::StaleEpochDrops, state.core.stale_drops());
                    state.journal
                })
                .expect("failed to spawn node thread");
            threads.push(handle);
        }
        ArrowRuntime {
            senders,
            threads,
            stats,
            blocked,
            n,
            k: objects,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of objects served.
    pub fn object_count(&self) -> usize {
        self.k
    }

    /// Shared runtime statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// A handle for injecting faults into the running system (crash/restart
    /// nodes, sever/restore links, broadcast epoch bumps). Cloneable and
    /// independent of the application handles; typically driven from a dedicated
    /// injector thread via [`FaultHandle::run_schedule`].
    pub fn fault_handle(&self) -> FaultHandle {
        FaultHandle {
            senders: self.senders.clone(),
            blocked: Arc::clone(&self.blocked),
        }
    }

    /// A handle for the application running at node `v`.
    pub fn handle(&self, v: NodeId) -> NodeHandle {
        assert!(v < self.n, "node {v} out of range");
        NodeHandle {
            node: v,
            objects: self.k,
            sender: self.senders[v].clone(),
        }
    }

    /// Stop all node threads and wait for them to finish.
    pub fn shutdown(self) {
        let _ = self.shutdown_report();
    }

    /// Stop all node threads and assemble the run's [`LiveReport`]: the
    /// reconstructed request schedule (wall-clock issue times since spawn) and the
    /// successor-notification records every node journaled, ready for the same
    /// per-object order validation the simulator harness applies. Call only once
    /// all application-level acquires have returned.
    pub fn shutdown_report(mut self) -> LiveReport {
        for (v, tx) in self.senders.iter().enumerate() {
            let _ = tx.send((v, LiveMsg::Shutdown));
        }
        let mut issued = Vec::new();
        let mut records = Vec::new();
        for t in self.threads.drain(..) {
            if let Ok(journal) = t.join() {
                issued.extend(journal.issued);
                records.extend(journal.records);
            }
        }
        issued.sort_by_key(|r| (r.time, r.id));
        LiveReport {
            schedule: RequestSchedule::from_requests(issued),
            records,
            stats: self.stats.snapshot(),
            metrics: self.stats.metrics(),
        }
    }
}

/// Everything a thread-runtime run leaves behind: the reconstructed request
/// schedule (wall-clock issue times, in seconds since spawn), the
/// successor-notification records every node journaled, and the runtime statistics
/// — the thread-tier analogue of the socket tier's `NetReport`.
#[derive(Debug, Clone)]
pub struct LiveReport {
    schedule: RequestSchedule,
    records: Vec<OrderRecord>,
    stats: (u64, u64, u64),
    metrics: MetricsSnapshot,
}

impl LiveReport {
    /// The full cross-tier metrics snapshot at shutdown (shared schema with the
    /// simulator harness and the socket tier).
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// The requests issued during the run, in non-decreasing issue-time order.
    pub fn schedule(&self) -> &RequestSchedule {
        &self.schedule
    }

    /// The successor notifications journaled by all nodes.
    pub fn records(&self) -> &[OrderRecord] {
        &self.records
    }

    /// `(queue messages, token messages, acquisitions)` at shutdown.
    pub fn stats(&self) -> (u64, u64, u64) {
        self.stats
    }

    /// Assemble and validate the queuing order of every object that saw at least
    /// one request — the same per-object validation contract the simulator harness
    /// enforces ([`crate::order::per_object_orders`]).
    pub fn validated_orders(&self) -> Result<Vec<(ObjectId, QueuingOrder)>, OrderError> {
        crate::order::per_object_orders(&self.records, &self.schedule).map_err(|(_, e)| e)
    }
}

/// Fault-injection handle of a running [`ArrowRuntime`]: kill and respawn nodes,
/// sever and restore links, and broadcast the detection-driven epoch bumps that
/// trigger token regeneration — the thread-tier counterpart of the simulator's
/// scheduled [`desim::SimFault`]s.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    senders: Vec<Sender<(NodeId, LiveMsg)>>,
    blocked: Arc<Mutex<HashSet<(NodeId, NodeId)>>>,
}

impl FaultHandle {
    /// Crash node `v`: it discards volatile protocol state, fails its in-flight
    /// local acquires promptly, and ignores all traffic until [`restart`].
    ///
    /// [`restart`]: FaultHandle::restart
    pub fn crash(&self, v: NodeId) {
        let _ = self.senders[v].send((v, LiveMsg::Crash));
    }

    /// Restart crashed node `v` with freshly initialised protocol state.
    pub fn restart(&self, v: NodeId) {
        let _ = self.senders[v].send((v, LiveMsg::Restart));
    }

    /// Sever the link between `u` and `v` (both directions): subsequent sends
    /// across it are silently dropped until [`restore_link`].
    ///
    /// [`restore_link`]: FaultHandle::restore_link
    pub fn drop_link(&self, u: NodeId, v: NodeId) {
        self.blocked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert((u.min(v), u.max(v)));
    }

    /// Restore a severed link.
    pub fn restore_link(&self, u: NodeId, v: NodeId) {
        self.blocked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&(u.min(v), u.max(v)));
    }

    /// Broadcast a detection-driven epoch bump to every node (crashed nodes miss
    /// it and catch up from live traffic or a later broadcast).
    pub fn broadcast_epoch(&self, epoch: u64) {
        for (v, tx) in self.senders.iter().enumerate() {
            let _ = tx.send((v, LiveMsg::Epoch { epoch }));
        }
    }

    /// Apply one fault action and broadcast the epoch bump that detection of it
    /// triggers. A crash is applied *before* the broadcast, so the crashed node
    /// misses its own bump (it learns the epoch later); a restart is applied
    /// before too, so the restarted node receives it (channel FIFO).
    ///
    /// # Panics
    /// On [`FaultAction::PartitionTree`] — lower the schedule against a tree
    /// first ([`FaultSchedule::lowered`]).
    pub fn apply(&self, action: &FaultAction, epoch: u64) {
        match *action {
            FaultAction::CrashNode(v) => self.crash(v),
            FaultAction::RestartNode(v) => self.restart(v),
            FaultAction::DropLink(u, v) => self.drop_link(u, v),
            FaultAction::RestoreLink(u, v) => self.restore_link(u, v),
            FaultAction::PartitionTree(_) => {
                panic!("partition faults must be lowered to link drops first")
            }
        }
        self.broadcast_epoch(epoch);
    }

    /// Drive a whole fault schedule against the running system, pacing event
    /// ticks to `tick` of wall clock (blocking; run it on a dedicated injector
    /// thread). Event `i` is followed by the broadcast of epoch `i + 1`,
    /// mirroring the simulator harness's detection model.
    pub fn run_schedule(&self, schedule: &FaultSchedule, tree: &RootedTree, tick: Duration) {
        let lowered = schedule.lowered(tree);
        let started = Instant::now();
        for (i, ev) in lowered.events.iter().enumerate() {
            let due = started + tick * ev.at as u32;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            self.apply(&ev.action, (i + 1) as u64);
        }
    }
}

/// The application-facing handle of one node: blocking token acquire/release, per
/// object.
#[derive(Debug, Clone)]
pub struct NodeHandle {
    node: NodeId,
    objects: usize,
    sender: Sender<(NodeId, LiveMsg)>,
}

impl NodeHandle {
    /// This handle's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Issue a queuing request for the default object and block until this node holds
    /// its token. Returns the id of the granted request, which must be passed to
    /// [`release`].
    ///
    /// [`release`]: NodeHandle::release
    pub fn acquire(&self) -> RequestId {
        self.acquire_object(ObjectId::DEFAULT)
    }

    /// Like [`acquire_object`], but give up after `timeout` — `None` means the
    /// grant never arrived, which (absent an application that simply holds tokens
    /// that long) indicates a lost token, i.e. a protocol bug. The conformance
    /// drivers use this so a grant-chain deadlock becomes a recorded failure
    /// instead of a hung sweep.
    ///
    /// [`acquire_object`]: NodeHandle::acquire_object
    pub fn acquire_object_timeout(
        &self,
        obj: ObjectId,
        timeout: std::time::Duration,
    ) -> Option<RequestId> {
        assert!(
            (obj.0 as usize) < self.objects,
            "object {obj} out of range (runtime serves {} objects)",
            self.objects
        );
        let (reply_tx, reply_rx) = channel();
        self.sender
            .send((
                self.node,
                LiveMsg::Acquire {
                    obj,
                    reply: reply_tx,
                },
            ))
            .expect("runtime has shut down");
        reply_rx.recv_timeout(timeout).ok()
    }

    /// Issue a queuing request for `obj` and block until this node holds that
    /// object's token. Returns the id of the granted request, which must be passed to
    /// [`release_object`] with the same object.
    ///
    /// [`release_object`]: NodeHandle::release_object
    pub fn acquire_object(&self, obj: ObjectId) -> RequestId {
        assert!(
            (obj.0 as usize) < self.objects,
            "object {obj} out of range (runtime serves {} objects)",
            self.objects
        );
        let (reply_tx, reply_rx) = channel();
        self.sender
            .send((
                self.node,
                LiveMsg::Acquire {
                    obj,
                    reply: reply_tx,
                },
            ))
            .expect("runtime has shut down");
        reply_rx.recv().expect("runtime has shut down")
    }

    /// Release the default object's token held for `req`.
    pub fn release(&self, req: RequestId) {
        self.release_object(ObjectId::DEFAULT, req);
    }

    /// Release `obj`'s token held for `req`, letting it move on to the successor.
    pub fn release_object(&self, obj: ObjectId, req: RequestId) {
        self.sender
            .send((self.node, LiveMsg::Release { obj, req }))
            .expect("runtime has shut down");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;
    use std::sync::atomic::Ordering;

    fn tree(n: usize) -> RootedTree {
        RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0)
    }

    #[test]
    fn single_acquire_release_at_root() {
        let rt = ArrowRuntime::spawn(&tree(3));
        let h = rt.handle(0);
        let req = h.acquire();
        h.release(req);
        assert_eq!(rt.stats().snapshot().2, 1);
        rt.shutdown();
    }

    #[test]
    fn remote_acquire_gets_the_token() {
        let rt = ArrowRuntime::spawn(&tree(7));
        let h = rt.handle(6);
        let req = h.acquire();
        h.release(req);
        let (queue_msgs, token_msgs, acqs) = rt.stats().snapshot();
        assert_eq!(acqs, 1);
        assert!(queue_msgs >= 1, "request from a leaf must cross links");
        assert!(token_msgs >= 1, "token must travel to the leaf");
        rt.shutdown();
    }

    #[test]
    fn leaf_first_acquire_queues_behind_the_roots_virtual_request() {
        // The root's virtual request r0 starts released, so a leaf's very first
        // acquire must be granted without anyone calling release() — its request is
        // queued directly behind r0 and inherits the free token.
        let rt = ArrowRuntime::spawn(&tree(7));
        let leaf = rt.handle(6);
        let req = leaf.acquire(); // would deadlock if r0 were not released
        assert!(!req.is_root());
        let (queue_msgs, token_msgs, acqs) = rt.stats().snapshot();
        assert_eq!(acqs, 1);
        assert!(queue_msgs >= 1);
        assert!(
            token_msgs >= 1,
            "the root's free token travelled to the leaf"
        );
        leaf.release(req);
        rt.shutdown();
    }

    #[test]
    fn sequential_acquires_from_many_nodes() {
        let rt = ArrowRuntime::spawn(&tree(7));
        for v in 0..7 {
            let h = rt.handle(v);
            let req = h.acquire();
            h.release(req);
        }
        assert_eq!(rt.stats().snapshot().2, 7);
        rt.shutdown();
    }

    #[test]
    fn concurrent_acquires_all_complete() {
        let rt = Arc::new(ArrowRuntime::spawn(&tree(15)));
        let mut joins = Vec::new();
        for v in 0..15 {
            let h = rt.handle(v);
            joins.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let req = h.acquire();
                    h.release(req);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(rt.stats().snapshot().2, 150);
        Arc::try_unwrap(rt).ok().unwrap().shutdown();
    }

    #[test]
    fn two_objects_can_be_held_simultaneously() {
        // Object tokens are independent: two different nodes can hold the tokens of
        // two different objects at the same time without either releasing.
        let rt = ArrowRuntime::spawn_multi(&tree(7), 2);
        assert_eq!(rt.object_count(), 2);
        let a = rt.handle(5);
        let b = rt.handle(6);
        let ra = a.acquire_object(ObjectId(0));
        let rb = b.acquire_object(ObjectId(1)); // would block forever on one object
        a.release_object(ObjectId(0), ra);
        b.release_object(ObjectId(1), rb);
        assert_eq!(rt.stats().snapshot().2, 2);
        rt.shutdown();
    }

    #[test]
    fn concurrent_multi_object_acquires_all_complete() {
        let k = 4;
        let rt = Arc::new(ArrowRuntime::spawn_multi(&tree(15), k));
        let mut joins = Vec::new();
        for v in 0..15 {
            let h = rt.handle(v);
            joins.push(std::thread::spawn(move || {
                for round in 0..8 {
                    let obj = ObjectId(((v + round) % k) as u32);
                    let req = h.acquire_object(obj);
                    h.release_object(obj, req);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(rt.stats().snapshot().2, 15 * 8);
        Arc::try_unwrap(rt).ok().unwrap().shutdown();
    }

    #[test]
    fn shutdown_report_journals_a_validatable_order() {
        let rt = ArrowRuntime::spawn_multi(&tree(7), 2);
        for v in 0..7 {
            let h = rt.handle(v);
            for obj in [ObjectId(0), ObjectId(1)] {
                let req = h.acquire_object(obj);
                h.release_object(obj, req);
            }
        }
        let report = rt.shutdown_report();
        assert_eq!(report.schedule().len(), 14);
        assert_eq!(report.records().len(), 14);
        assert_eq!(report.stats().2, 14);
        let orders = report.validated_orders().expect("both objects valid");
        assert_eq!(orders.len(), 2);
        let total: usize = orders.iter().map(|(_, o)| o.len()).sum();
        assert_eq!(total, 14, "every request queued in exactly one order");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn handle_for_missing_node_panics() {
        let rt = ArrowRuntime::spawn(&tree(3));
        let _ = rt.handle(9);
    }

    #[test]
    fn acquire_against_a_crashed_node_fails_fast() {
        let rt = ArrowRuntime::spawn(&tree(7));
        let fh = rt.fault_handle();
        fh.crash(5);
        let started = Instant::now();
        // The generous timeout must not be consumed: the crashed node drops the
        // reply channel, failing the acquire promptly.
        let got = rt
            .handle(5)
            .acquire_object_timeout(ObjectId::DEFAULT, Duration::from_secs(10));
        assert!(got.is_none());
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "crashed node must fail acquires promptly, not by timeout"
        );
        fh.restart(5);
        rt.shutdown();
    }

    #[test]
    fn crash_fails_in_flight_acquires_promptly() {
        let rt = ArrowRuntime::spawn(&tree(7));
        // The root holds the token, so node 5's acquire stays pending...
        let root = rt.handle(0);
        let held = root.acquire();
        let waiter = rt.handle(5);
        let join = std::thread::spawn(move || {
            let started = Instant::now();
            let got = waiter.acquire_object_timeout(ObjectId::DEFAULT, Duration::from_secs(10));
            (got, started.elapsed())
        });
        // ...give the request time to queue, then crash the waiter's node.
        std::thread::sleep(Duration::from_millis(50));
        let fh = rt.fault_handle();
        fh.crash(5);
        let (got, elapsed) = join.join().unwrap();
        assert!(got.is_none());
        assert!(
            elapsed < Duration::from_secs(2),
            "pending acquire at a crashing node must fail promptly"
        );
        fh.restart(5);
        root.release(held);
        rt.shutdown();
    }

    #[test]
    fn crashing_the_token_holder_regenerates_the_token() {
        let rt = ArrowRuntime::spawn(&tree(7));
        let fh = rt.fault_handle();
        // Node 5 wins the token and crashes while holding it: the token is lost.
        let holder = rt.handle(5);
        let req = holder.acquire();
        assert!(!req.is_root());
        fh.apply(&FaultAction::CrashNode(5), 1);
        // After the detection bump the root holds a regenerated token, so node 6
        // must still be granted — the lost token cannot wedge the directory.
        let got = rt
            .handle(6)
            .acquire_object_timeout(ObjectId::DEFAULT, Duration::from_secs(10))
            .expect("regenerated token grants the surviving node");
        rt.handle(6).release_object(ObjectId::DEFAULT, got);
        fh.apply(&FaultAction::RestartNode(5), 2);
        let report = rt.shutdown_report();
        assert!(
            report
                .records()
                .iter()
                .any(|r| r.epoch > 0 && r.predecessor.is_root()),
            "the post-crash grant chains from the regenerated root token"
        );
        crate::order::validate_churn_records(report.records(), 2)
            .expect("per-epoch order contract under churn");
    }

    #[test]
    fn generated_fault_schedule_churn_run_converges() {
        use std::sync::atomic::AtomicBool;
        let t = tree(9);
        let faults = FaultSchedule::generate(11, &t, 3);
        let final_epoch = faults.final_epoch();
        let rt = Arc::new(ArrowRuntime::spawn_multi(&t, 2));
        let fh = rt.fault_handle();
        let injector_done = Arc::new(AtomicBool::new(false));
        let injector = {
            let fh = fh.clone();
            let t = t.clone();
            let faults = faults.clone();
            let done = Arc::clone(&injector_done);
            std::thread::spawn(move || {
                fh.run_schedule(&faults, &t, Duration::from_millis(10));
                done.store(true, Ordering::SeqCst);
            })
        };
        let mut joins = Vec::new();
        for v in 0..9 {
            let h = rt.handle(v);
            let fh = fh.clone();
            let done = Arc::clone(&injector_done);
            joins.push(std::thread::spawn(move || {
                for round in 0..4u32 {
                    let obj = ObjectId((v as u32 + round) % 2);
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        assert!(attempts <= 200, "node {v} round {round} never granted");
                        match h.acquire_object_timeout(obj, Duration::from_millis(300)) {
                            Some(req) => {
                                h.release_object(obj, req);
                                break;
                            }
                            None => {
                                // Crashed-node failure or a grant lost to churn:
                                // once injection is over, a timeout doubles as
                                // fault detection — re-broadcasting the final
                                // epoch is idempotent and heals any straggler.
                                if done.load(Ordering::SeqCst) {
                                    fh.broadcast_epoch(final_epoch);
                                }
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        injector.join().unwrap();
        let report = Arc::try_unwrap(rt).ok().unwrap().shutdown_report();
        crate::order::validate_churn_records(report.records(), final_epoch)
            .expect("per-epoch order contract across a generated churn schedule");
        assert!(report.stats().2 >= 9 * 4, "every worker round was granted");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn acquire_for_missing_object_panics() {
        let rt = ArrowRuntime::spawn_multi(&tree(3), 2);
        let h = rt.handle(0);
        let _ = h.acquire_object(ObjectId(2));
    }
}
