//! Real-concurrency runtime: the arrow protocol over OS threads and channels.
//!
//! The discrete-event simulator ([`mod@crate::run`]) is the right tool for measurement —
//! it is deterministic and can run millions of requests. This module is the
//! complementary demonstration that the protocol is a practical building block: every
//! node is a real OS thread, messages travel over std::sync::mpsc channels (point-to-point
//! FIFO links, exactly the paper's communication model), and the queue is used the way
//! the paper's introduction motivates — to pass an exclusive token from each request
//! to its successor, i.e. distributed mutual exclusion.
//!
//! * [`core`] — the transport-agnostic per-node arrow state machine
//!   ([`core::ArrowCore`]), shared with the socket runtime in the `arrow-net` crate
//!   so the real-concurrency tiers cannot drift.
//! * [`ArrowRuntime`] — spawns one thread per node of a spanning tree and exposes a
//!   [`NodeHandle`] per node with `acquire()` / `release()` token operations.
//! * [`DistributedLock`] — a guard-style wrapper around a handle.
//! * [`CriticalSectionLog`] — a shared log used by tests and examples to verify the
//!   mutual-exclusion invariant.

pub mod core;
mod lock;
mod runtime;

pub use core::{ArrowCore, CoreAction, CoreSnapshot};
pub use lock::{CriticalSectionLog, DistributedLock, LockGuard, SectionRecord};
pub use runtime::{ArrowRuntime, FaultHandle, LiveReport, NodeHandle, RuntimeStats, EVENT_BATCH};
