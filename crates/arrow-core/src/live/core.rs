//! The transport-agnostic per-node arrow state machine.
//!
//! Three execution tiers run the same protocol: the discrete-event simulator
//! ([`crate::arrow`]), the in-process thread runtime ([`super::ArrowRuntime`]) and the
//! socket runtime (`arrow-net`). The thread and socket tiers share *this* module —
//! one [`ArrowCore`] per node holds the per-object link pointers, the path-reversal
//! logic and the per-(object, request) token bookkeeping, and reports what the
//! transport must do as a list of [`CoreAction`]s. The transport owns everything
//! I/O-shaped: channels or sockets, the map from pending requests to application
//! wakeups, latency, and statistics.
//!
//! Keeping the state machine in one place means the tiers cannot drift: a protocol
//! change lands here once and both real-concurrency runtimes pick it up.
//!
//! # Invariants the transports rely on
//!
//! * [`CoreAction::SendQueue`] targets are always tree neighbours of this node
//!   (`queue()` messages travel tree edges only).
//! * [`CoreAction::SendToken`] targets are never this node — a token grant for a
//!   local request surfaces as [`CoreAction::Granted`] instead.
//! * [`CoreAction::Queued`] fires exactly once per request, at the node holding the
//!   predecessor, when that node learns the successor's identity (Definition 3.2's
//!   end point; transports can log it as an order record).
//!
//! # Batched draining
//!
//! Every input method appends to a caller-owned `Vec<CoreAction>` and never reads
//! it back, so a transport may feed **many** inputs into the *same* actions vector
//! and translate the accumulated list once — the actions of each input are
//! contiguous and in input order, which preserves per-link FIFO as long as the
//! transport emits sends in list order. Both the thread runtime and the socket
//! runtime drain their inboxes in batches this way: it turns a burst of protocol
//! traffic into one apply pass (and, on the socket tier, into coalesced writes)
//! instead of one transport round-trip per message. The protocol itself does not
//! care — a node is free to receive more messages before acting on earlier ones,
//! because correctness only requires that each link delivers in FIFO order.

use crate::request::{ObjectId, RequestId};
use netgraph::{NodeId, RootedTree};
use std::collections::HashMap;

/// What a transport must do after feeding an input to [`ArrowCore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAction {
    /// Send the arrow `queue()` message for `obj` to tree neighbour `to`.
    SendQueue {
        /// Destination (a tree neighbour of this node; never this node itself).
        to: NodeId,
        /// Object whose queue the request joins.
        obj: ObjectId,
        /// The request being queued.
        req: RequestId,
        /// Node that issued the request.
        origin: NodeId,
    },
    /// Send `obj`'s exclusion token to `to`, granting its request `req`.
    SendToken {
        /// Destination (the granted request's origin; never this node itself).
        to: NodeId,
        /// Object whose token moves.
        obj: ObjectId,
        /// The request being granted.
        req: RequestId,
    },
    /// This node's own request `req` now holds `obj`'s token: wake the application.
    Granted {
        /// Object whose token arrived.
        obj: ObjectId,
        /// The local request being granted.
        req: RequestId,
    },
    /// Request `succ` (issued at `origin`) was queued directly behind `pred` in
    /// `obj`'s queue, and this node (holding `pred`) just learnt it.
    Queued {
        /// Object whose queue grew.
        obj: ObjectId,
        /// The earlier request (possibly [`RequestId::ROOT`]).
        pred: RequestId,
        /// The request queued behind it.
        succ: RequestId,
        /// Node that issued `succ`.
        origin: NodeId,
    },
}

/// Per-own-request token bookkeeping at the issuing node.
#[derive(Debug, Default)]
struct TokenState {
    /// The token for this request has been (or never needed to be) released.
    released: bool,
    /// The successor of this request, once known: `(request, origin node)`.
    successor: Option<(RequestId, NodeId)>,
}

/// Per-object arrow state at one node.
#[derive(Debug)]
struct ObjectState {
    /// `link_o(v)`: a tree neighbour, or the node itself when it is the sink.
    link: NodeId,
    /// `id_o(v)`: the last request for this object issued here. Initialised to the
    /// virtual root request at every node — see the invariant note in
    /// [`ArrowCore::new`].
    last_id: RequestId,
}

/// The per-node arrow automaton for `K` objects: link pointers, path reversal and
/// token bookkeeping, independent of how messages actually travel.
#[derive(Debug)]
pub struct ArrowCore {
    me: NodeId,
    total_nodes: u64,
    next_seq: u64,
    objects: Vec<ObjectState>,
    /// Token bookkeeping for requests issued by this node, keyed by
    /// (object, request id).
    tokens: HashMap<(ObjectId, RequestId), TokenState>,
}

impl ArrowCore {
    /// Arrow state for node `me` of a system of `total_nodes` nodes, serving
    /// `objects` objects whose link pointers all start at `initial_link` (the node's
    /// tree parent, or `me` itself at the root).
    ///
    /// Every object starts with `last_id = r0`, but only the root's value is ever
    /// read before being overwritten — a non-root node can only become a sink by
    /// issuing a request (which sets `last_id` first), so its initial value is never
    /// observed.
    ///
    /// # Panics
    /// If `objects` is zero.
    pub fn new(me: NodeId, initial_link: NodeId, objects: usize, total_nodes: usize) -> Self {
        assert!(objects > 0, "a directory serves at least one object");
        ArrowCore {
            me,
            total_nodes: total_nodes as u64,
            next_seq: 0,
            objects: (0..objects)
                .map(|_| ObjectState {
                    link: initial_link,
                    last_id: RequestId::ROOT,
                })
                .collect(),
            tokens: HashMap::new(),
        }
    }

    /// Arrow state for node `me` of the given rooted spanning tree: the initial link
    /// is the tree parent (or `me` itself at the root), so following pointers from
    /// anywhere leads to the root, which holds every object's initial token.
    pub fn for_tree(me: NodeId, tree: &RootedTree, objects: usize) -> Self {
        let link = if me == tree.root() {
            me
        } else {
            tree.parent(me).expect("non-root node has a parent")
        };
        ArrowCore::new(me, link, objects, tree.node_count())
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Number of objects served.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    fn fresh_request_id(&mut self) -> RequestId {
        // Unique across nodes (interleaved by node id) and across this node's
        // objects (one shared sequence). +1 keeps ids disjoint from the root id 0.
        let id = 1 + self.me as u64 + self.next_seq * self.total_nodes;
        self.next_seq += 1;
        RequestId(id)
    }

    fn object_mut(&mut self, obj: ObjectId) -> &mut ObjectState {
        let me = self.me;
        self.objects
            .get_mut(obj.0 as usize)
            .unwrap_or_else(|| panic!("node {me} does not serve object {obj}"))
    }

    /// Issue a queuing request for `obj` on behalf of the local application.
    /// Returns the fresh request id; the transport must remember it so a later
    /// [`CoreAction::Granted`] can wake the right waiter (possibly among `actions`
    /// already).
    ///
    /// # Panics
    /// If `obj` is out of range for this node.
    pub fn acquire(&mut self, obj: ObjectId, actions: &mut Vec<CoreAction>) -> RequestId {
        let req = self.fresh_request_id();
        self.tokens.insert((obj, req), TokenState::default());
        let me = self.me;
        let state = self.object_mut(obj);
        let previous = state.last_id;
        state.last_id = req;
        if state.link == me {
            // Local sink: req is queued directly behind our previous request.
            self.queuing_complete(obj, previous, req, me, actions);
        } else {
            let target = state.link;
            state.link = me;
            actions.push(CoreAction::SendQueue {
                to: target,
                obj,
                req,
                origin: me,
            });
        }
        req
    }

    /// Arrow path reversal for one object: a `queue()` message for request `req`
    /// (issued at `origin`) arrived from tree neighbour `from`.
    ///
    /// # Panics
    /// If `obj` is out of range for this node.
    pub fn on_queue(
        &mut self,
        from: NodeId,
        obj: ObjectId,
        req: RequestId,
        origin: NodeId,
        actions: &mut Vec<CoreAction>,
    ) {
        let me = self.me;
        let state = self.object_mut(obj);
        let old_link = state.link;
        state.link = from;
        if old_link == me {
            let pred = state.last_id;
            self.queuing_complete(obj, pred, req, origin, actions);
        } else {
            actions.push(CoreAction::SendQueue {
                to: old_link,
                obj,
                req,
                origin,
            });
        }
    }

    /// `obj`'s exclusion token arrived for this node's own request `req`.
    pub fn on_token(&mut self, obj: ObjectId, req: RequestId, actions: &mut Vec<CoreAction>) {
        actions.push(CoreAction::Granted { obj, req });
    }

    /// The local application released `obj`'s token it held for `req`.
    pub fn on_release(&mut self, obj: ObjectId, req: RequestId, actions: &mut Vec<CoreAction>) {
        let state = self.tokens.entry((obj, req)).or_default();
        if let Some((succ, origin)) = state.successor.take() {
            self.tokens.remove(&(obj, req));
            self.grant(obj, succ, origin, actions);
        } else {
            state.released = true;
        }
    }

    /// Request `succ` (from `origin`) has been queued behind `pred` in `obj`'s queue,
    /// and `pred` lives here.
    fn queuing_complete(
        &mut self,
        obj: ObjectId,
        pred: RequestId,
        succ: RequestId,
        origin: NodeId,
        actions: &mut Vec<CoreAction>,
    ) {
        actions.push(CoreAction::Queued {
            obj,
            pred,
            succ,
            origin,
        });
        if pred.is_root() {
            // The token has been sitting at the object's initial root, already free.
            self.grant(obj, succ, origin, actions);
            return;
        }
        let state = self.tokens.entry((obj, pred)).or_default();
        if state.released {
            self.tokens.remove(&(obj, pred));
            self.grant(obj, succ, origin, actions);
        } else {
            state.successor = Some((succ, origin));
        }
    }

    /// Hand `obj`'s token to the node that issued `req`.
    fn grant(
        &mut self,
        obj: ObjectId,
        req: RequestId,
        origin: NodeId,
        actions: &mut Vec<CoreAction>,
    ) {
        if origin == self.me {
            self.on_token(obj, req, actions);
        } else {
            actions.push(CoreAction::SendToken {
                to: origin,
                obj,
                req,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    fn tree(n: usize) -> RootedTree {
        RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0)
    }

    #[test]
    fn root_acquire_is_granted_locally() {
        let mut core = ArrowCore::for_tree(0, &tree(3), 1);
        let mut out = Vec::new();
        let req = core.acquire(ObjectId::DEFAULT, &mut out);
        // The root is the sink of its own virtual request r0, already released.
        assert_eq!(
            out,
            vec![
                CoreAction::Queued {
                    obj: ObjectId::DEFAULT,
                    pred: RequestId::ROOT,
                    succ: req,
                    origin: 0,
                },
                CoreAction::Granted {
                    obj: ObjectId::DEFAULT,
                    req,
                },
            ]
        );
    }

    #[test]
    fn non_root_acquire_sends_queue_towards_parent() {
        let t = tree(7);
        let mut core = ArrowCore::for_tree(5, &t, 1);
        let mut out = Vec::new();
        let req = core.acquire(ObjectId::DEFAULT, &mut out);
        assert_eq!(
            out,
            vec![CoreAction::SendQueue {
                to: t.parent(5).unwrap(),
                obj: ObjectId::DEFAULT,
                req,
                origin: 5,
            }]
        );
    }

    #[test]
    fn queue_is_forwarded_along_old_link_with_path_reversal() {
        let t = tree(7);
        // Node 1's link initially points at its parent 0; a queue() arriving from
        // child 3 must be forwarded to 0 and the link must flip to 3.
        let mut core = ArrowCore::for_tree(1, &t, 1);
        let mut out = Vec::new();
        core.on_queue(3, ObjectId::DEFAULT, RequestId(9), 3, &mut out);
        assert_eq!(
            out,
            vec![CoreAction::SendQueue {
                to: 0,
                obj: ObjectId::DEFAULT,
                req: RequestId(9),
                origin: 3,
            }]
        );
        out.clear();
        // A second queue() arriving from 0 must now chase the flipped link to 3.
        core.on_queue(0, ObjectId::DEFAULT, RequestId(10), 6, &mut out);
        assert_eq!(
            out,
            vec![CoreAction::SendQueue {
                to: 3,
                obj: ObjectId::DEFAULT,
                req: RequestId(10),
                origin: 6,
            }]
        );
    }

    #[test]
    fn token_waits_for_release_then_travels_to_successor() {
        let mut core = ArrowCore::for_tree(0, &tree(3), 1);
        let mut out = Vec::new();
        let own = core.acquire(ObjectId::DEFAULT, &mut out);
        out.clear();
        // A remote request queues behind ours before we release.
        core.on_queue(1, ObjectId::DEFAULT, RequestId(40), 2, &mut out);
        assert_eq!(
            out,
            vec![CoreAction::Queued {
                obj: ObjectId::DEFAULT,
                pred: own,
                succ: RequestId(40),
                origin: 2,
            }],
            "token is still held: no grant yet"
        );
        out.clear();
        core.on_release(ObjectId::DEFAULT, own, &mut out);
        assert_eq!(
            out,
            vec![CoreAction::SendToken {
                to: 2,
                obj: ObjectId::DEFAULT,
                req: RequestId(40),
            }]
        );
    }

    #[test]
    fn release_before_successor_known_hands_over_immediately_later() {
        let mut core = ArrowCore::for_tree(0, &tree(3), 1);
        let mut out = Vec::new();
        let own = core.acquire(ObjectId::DEFAULT, &mut out);
        out.clear();
        core.on_release(ObjectId::DEFAULT, own, &mut out);
        assert!(out.is_empty(), "no successor yet: nothing to do");
        core.on_queue(1, ObjectId::DEFAULT, RequestId(7), 1, &mut out);
        assert_eq!(
            out,
            vec![
                CoreAction::Queued {
                    obj: ObjectId::DEFAULT,
                    pred: own,
                    succ: RequestId(7),
                    origin: 1,
                },
                CoreAction::SendToken {
                    to: 1,
                    obj: ObjectId::DEFAULT,
                    req: RequestId(7),
                },
            ]
        );
    }

    #[test]
    fn objects_have_independent_links_and_ids() {
        let t = tree(7);
        let mut core = ArrowCore::for_tree(2, &t, 2);
        assert_eq!(core.object_count(), 2);
        let mut out = Vec::new();
        let a = core.acquire(ObjectId(0), &mut out);
        let b = core.acquire(ObjectId(1), &mut out);
        assert_ne!(a, b, "one shared id sequence across objects");
        // Both queues were sent towards the parent independently.
        let targets: Vec<NodeId> = out
            .iter()
            .filter_map(|act| match act {
                CoreAction::SendQueue { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![t.parent(2).unwrap(), t.parent(2).unwrap()]);
    }

    #[test]
    fn request_ids_are_disjoint_across_nodes() {
        let t = tree(7);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for v in 0..7 {
            let mut core = ArrowCore::for_tree(v, &t, 1);
            for _ in 0..5 {
                assert!(seen.insert(core.acquire(ObjectId::DEFAULT, &mut out)));
            }
        }
        assert!(!seen.contains(&RequestId::ROOT));
    }

    #[test]
    #[should_panic(expected = "does not serve object")]
    fn out_of_range_object_panics() {
        let mut core = ArrowCore::for_tree(0, &tree(3), 1);
        let mut out = Vec::new();
        core.acquire(ObjectId(1), &mut out);
    }
}
