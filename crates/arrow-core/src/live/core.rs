//! The transport-agnostic per-node arrow state machine.
//!
//! Three execution tiers run the same protocol: the discrete-event simulator
//! ([`crate::arrow`]), the in-process thread runtime ([`super::ArrowRuntime`]) and the
//! socket runtime (`arrow-net`). The thread and socket tiers share *this* module —
//! one [`ArrowCore`] per node holds the per-object link pointers, the path-reversal
//! logic and the per-(object, request) token bookkeeping, and reports what the
//! transport must do as a list of [`CoreAction`]s. The transport owns everything
//! I/O-shaped: channels or sockets, the map from pending requests to application
//! wakeups, latency, and statistics.
//!
//! Keeping the state machine in one place means the tiers cannot drift: a protocol
//! change lands here once and both real-concurrency runtimes pick it up.
//!
//! # Invariants the transports rely on
//!
//! * [`CoreAction::SendQueue`] targets are always tree neighbours of this node
//!   (`queue()` messages travel tree edges only).
//! * [`CoreAction::SendToken`] targets are never this node — a token grant for a
//!   local request surfaces as [`CoreAction::Granted`] instead.
//! * [`CoreAction::Queued`] fires exactly once per request, at the node holding the
//!   predecessor, when that node learns the successor's identity (Definition 3.2's
//!   end point; transports can log it as an order record).
//!
//! # Batched draining
//!
//! Every input method appends to a caller-owned `Vec<CoreAction>` and never reads
//! it back, so a transport may feed **many** inputs into the *same* actions vector
//! and translate the accumulated list once — the actions of each input are
//! contiguous and in input order, which preserves per-link FIFO as long as the
//! transport emits sends in list order. Both the thread runtime and the socket
//! runtime drain their inboxes in batches this way: it turns a burst of protocol
//! traffic into one apply pass (and, on the socket tier, into coalesced writes)
//! instead of one transport round-trip per message. The protocol itself does not
//! care — a node is free to receive more messages before acting on earlier ones,
//! because correctness only requires that each link delivers in FIFO order.

use crate::request::{ObjectId, RequestId};
use arrow_trace::{NoProbe, Probe, ProbeEvent};
use netgraph::{NodeId, RootedTree};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// What a transport must do after feeding an input to [`ArrowCore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAction {
    /// Send the arrow `queue()` message for `obj` to tree neighbour `to`.
    SendQueue {
        /// Destination (a tree neighbour of this node; never this node itself).
        to: NodeId,
        /// Object whose queue the request joins.
        obj: ObjectId,
        /// The request being queued.
        req: RequestId,
        /// Node that issued the request.
        origin: NodeId,
        /// Recovery epoch the message belongs to (stamped on the wire; receivers
        /// reject stale epochs).
        epoch: u64,
    },
    /// Send `obj`'s exclusion token to `to`, granting its request `req`.
    SendToken {
        /// Destination (the granted request's origin; never this node itself).
        to: NodeId,
        /// Object whose token moves.
        obj: ObjectId,
        /// The request being granted.
        req: RequestId,
        /// Recovery epoch the token belongs to (a stale-epoch token is a ghost
        /// from before a regeneration and is rejected on receipt).
        epoch: u64,
    },
    /// This node's own request `req` now holds `obj`'s token: wake the application.
    Granted {
        /// Object whose token arrived.
        obj: ObjectId,
        /// The local request being granted.
        req: RequestId,
    },
    /// Request `succ` (issued at `origin`) was queued directly behind `pred` in
    /// `obj`'s queue, and this node (holding `pred`) just learnt it.
    Queued {
        /// Object whose queue grew.
        obj: ObjectId,
        /// The earlier request (possibly [`RequestId::ROOT`]).
        pred: RequestId,
        /// The request queued behind it.
        succ: RequestId,
        /// Node that issued `succ`.
        origin: NodeId,
        /// Recovery epoch the succession belongs to (journaled into the order
        /// records for per-epoch validation).
        epoch: u64,
    },
}

/// Per-own-request token bookkeeping at the issuing node.
#[derive(Debug, Clone, Default)]
struct TokenState {
    /// The token has arrived for this request (the application holds it, or held
    /// it and released). Requests with `granted == false` are still *pending* and
    /// get re-issued after an epoch bump.
    granted: bool,
    /// The token for this request has been (or never needed to be) released.
    released: bool,
    /// The successor of this request, once known: `(request, origin node)`.
    successor: Option<(RequestId, NodeId)>,
}

/// Per-object arrow state at one node.
#[derive(Debug, Clone)]
struct ObjectState {
    /// `link_o(v)`: a tree neighbour, or the node itself when it is the sink.
    link: NodeId,
    /// `id_o(v)`: the last request for this object issued here. Initialised to the
    /// virtual root request at every node — see the invariant note in
    /// [`ArrowCore::new`].
    last_id: RequestId,
}

/// A deterministic, canonically ordered copy of one [`ArrowCore`]'s protocol
/// state, exposed for the `arrow-model` explicit-state model checker.
///
/// Two cores that would behave identically on every future input produce equal
/// snapshots: the token map is flattened into a sorted vector, so iteration
/// order of the underlying `HashMap` never leaks into the snapshot. `Hash`,
/// `Eq` and `Ord` are derived, which makes the snapshot directly usable as a
/// key in visited-state sets and as input to canonical state hashing.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreSnapshot {
    /// The node the snapshot was taken at.
    pub node: NodeId,
    /// Current recovery epoch.
    pub epoch: u64,
    /// Next value of the per-node request-id sequence (captured because two
    /// cores that differ only here still assign different future ids).
    pub next_seq: u64,
    /// Per-object `(link, last_id)` pairs, indexed by object id.
    pub objects: Vec<(NodeId, RequestId)>,
    /// Token bookkeeping rows, sorted by `(object, request)`.
    pub tokens: Vec<TokenRow>,
}

/// One row of [`CoreSnapshot::tokens`]:
/// `(object, request, granted, released, successor)`.
pub type TokenRow = (ObjectId, RequestId, bool, bool, Option<(RequestId, NodeId)>);

/// The per-node arrow automaton for `K` objects: link pointers, path reversal and
/// token bookkeeping, independent of how messages actually travel.
///
/// `Clone` is derived so an explicit-state model checker can branch a system
/// state into successors; the clone is an independent automaton with identical
/// behaviour.
///
/// The `P` parameter is the observability hook ([`arrow_trace::Probe`]): every
/// protocol transition is reported to `probe.record(..)`. The default
/// [`NoProbe`] monomorphizes those calls to nothing, so existing constructors
/// ([`ArrowCore::new`], [`ArrowCore::for_tree`]) build the probe-free automaton
/// unchanged; recording cores come from [`ArrowCore::with_probe`] /
/// [`ArrowCore::for_tree_with_probe`]. The probe is *not* protocol state: it is
/// excluded from [`ArrowCore::snapshot`] and [`ArrowCore::hash_into`], so the
/// model checker's state space is identical whether or not a run is traced.
#[derive(Debug, Clone)]
pub struct ArrowCore<P: Probe = NoProbe> {
    me: NodeId,
    total_nodes: u64,
    next_seq: u64,
    objects: Vec<ObjectState>,
    /// Token bookkeeping for requests issued by this node, keyed by
    /// (object, request id).
    tokens: HashMap<(ObjectId, RequestId), TokenState>,
    /// Current recovery epoch (0 until a fault is detected). Stamped on outgoing
    /// messages; inputs from older epochs are rejected, newer ones fast-forward.
    epoch: u64,
    /// The initial link pointer (tree parent, or `me` at the root), kept so an
    /// epoch bump can reset every object to the initial tree orientation.
    initial_link: NodeId,
    /// Stale-epoch inputs rejected by this node.
    stale_drops: u64,
    /// The observability hook (zero-sized and inert for [`NoProbe`]).
    probe: P,
}

impl ArrowCore {
    /// Arrow state for node `me` of a system of `total_nodes` nodes, serving
    /// `objects` objects whose link pointers all start at `initial_link` (the node's
    /// tree parent, or `me` itself at the root).
    ///
    /// Every object starts with `last_id = r0`, but only the root's value is ever
    /// read before being overwritten — a non-root node can only become a sink by
    /// issuing a request (which sets `last_id` first), so its initial value is never
    /// observed.
    ///
    /// # Panics
    /// If `objects` is zero.
    pub fn new(me: NodeId, initial_link: NodeId, objects: usize, total_nodes: usize) -> Self {
        ArrowCore::with_probe(me, initial_link, objects, total_nodes, NoProbe)
    }

    /// Arrow state for node `me` of the given rooted spanning tree: the initial link
    /// is the tree parent (or `me` itself at the root), so following pointers from
    /// anywhere leads to the root, which holds every object's initial token.
    pub fn for_tree(me: NodeId, tree: &RootedTree, objects: usize) -> Self {
        ArrowCore::for_tree_with_probe(me, tree, objects, NoProbe)
    }
}

impl<P: Probe> ArrowCore<P> {
    /// Like [`ArrowCore::new`], with a recording probe observing every protocol
    /// transition of this node.
    ///
    /// # Panics
    /// If `objects` is zero.
    pub fn with_probe(
        me: NodeId,
        initial_link: NodeId,
        objects: usize,
        total_nodes: usize,
        probe: P,
    ) -> Self {
        assert!(objects > 0, "a directory serves at least one object");
        ArrowCore {
            me,
            total_nodes: total_nodes as u64,
            next_seq: 0,
            objects: (0..objects)
                .map(|_| ObjectState {
                    link: initial_link,
                    last_id: RequestId::ROOT,
                })
                .collect(),
            tokens: HashMap::new(),
            epoch: 0,
            initial_link,
            stale_drops: 0,
            probe,
        }
    }

    /// Like [`ArrowCore::for_tree`], with a recording probe.
    pub fn for_tree_with_probe(me: NodeId, tree: &RootedTree, objects: usize, probe: P) -> Self {
        let link = if me == tree.root() {
            me
        } else {
            tree.parent(me).expect("non-root node has a parent")
        };
        ArrowCore::with_probe(me, link, objects, tree.node_count(), probe)
    }

    /// The probe, for transports that emit runtime-level events (e.g. the
    /// orphaned-grant self-release) through the node's recording channel.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Number of objects served.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// The recovery epoch this node has reached (0 in fault-free runs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stale-epoch inputs this node rejected.
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops
    }

    /// The current link pointer for `obj` (a tree neighbour, or this node itself
    /// when it is the object's sink).
    ///
    /// # Panics
    /// If `obj` is out of range for this node.
    pub fn link_of(&self, obj: ObjectId) -> NodeId {
        self.objects
            .get(obj.0 as usize)
            .unwrap_or_else(|| panic!("node {} does not serve object {obj}", self.me))
            .link
    }

    /// A deterministic, canonically ordered copy of this core's protocol state.
    ///
    /// Used by the `arrow-model` checker both to test state equality (dedup) and
    /// to read protocol facts — link pointers, pending requests, epochs — without
    /// reaching into private fields. The snapshot is independent of `HashMap`
    /// iteration order, so equal protocol states always snapshot equal.
    pub fn snapshot(&self) -> CoreSnapshot {
        let mut tokens: Vec<_> = self
            .tokens
            .iter()
            .map(|(&(obj, req), st)| (obj, req, st.granted, st.released, st.successor))
            .collect();
        tokens.sort();
        CoreSnapshot {
            node: self.me,
            epoch: self.epoch,
            next_seq: self.next_seq,
            objects: self
                .objects
                .iter()
                .map(|st| (st.link, st.last_id))
                .collect(),
            tokens,
        }
    }

    /// Feed this core's canonical state into a hasher (a cheaper alternative to
    /// building a full [`CoreSnapshot`] when only a state hash is needed).
    ///
    /// Deterministic across runs for the same protocol state: the token map is
    /// folded in sorted order and the hasher sees exactly the fields a
    /// [`CoreSnapshot`] carries.
    pub fn hash_into<H: Hasher>(&self, hasher: &mut H) {
        self.me.hash(hasher);
        self.epoch.hash(hasher);
        self.next_seq.hash(hasher);
        for st in &self.objects {
            st.link.hash(hasher);
            st.last_id.hash(hasher);
        }
        let mut tokens: Vec<_> = self
            .tokens
            .iter()
            .map(|(&(obj, req), st)| (obj, req, st.granted, st.released, st.successor))
            .collect();
        tokens.sort();
        tokens.hash(hasher);
    }

    /// This node's own requests still awaiting their token, sorted.
    pub fn pending(&self) -> Vec<(ObjectId, RequestId)> {
        let mut pending: Vec<_> = self
            .tokens
            .iter()
            .filter(|(_, st)| !st.granted)
            .map(|(&key, _)| key)
            .collect();
        pending.sort();
        pending
    }

    /// Crash-restart: volatile protocol state (link pointers, token bookkeeping,
    /// the recovery epoch) is lost and reset to the initial tree orientation. The
    /// request-id counter survives — it models a counter in stable storage — so
    /// requests issued after the restart never collide with pre-crash ids. The
    /// node re-learns the current epoch from the next detection signal or from
    /// the first newer-epoch message it receives.
    pub fn reboot(&mut self) {
        for state in &mut self.objects {
            state.link = self.initial_link;
            state.last_id = RequestId::ROOT;
        }
        self.tokens.clear();
        self.epoch = 0;
    }

    /// Restore the stable-storage request-id counter after a *process*-level
    /// restart: advance `next_seq` to at least `seq` (never backwards).
    ///
    /// [`ArrowCore::reboot`] models an in-process crash, where the counter
    /// genuinely survives. A killed and re-spawned process starts from a fresh
    /// core whose counter is zero; re-issuing ids the dead incarnation already
    /// used would collide with its requests still chained in surviving nodes'
    /// journals. A restart supervisor passes a safe lower bound here (e.g. an
    /// over-estimate of requests per incarnation) before the core issues
    /// anything.
    pub fn advance_request_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// Epoch guard for in-band inputs: `false` means the input is stale and must be
    /// dropped; a newer epoch first fast-forwards this node (a restarted or
    /// partitioned-away node can miss detection signals and learns the current
    /// epoch from live traffic).
    fn admit_epoch(&mut self, obj: ObjectId, epoch: u64, actions: &mut Vec<CoreAction>) -> bool {
        if epoch < self.epoch {
            self.stale_drops += 1;
            self.probe.record(ProbeEvent::StaleDrop { obj: obj.0 });
            return false;
        }
        if epoch > self.epoch {
            self.bump_epoch(epoch, actions);
        }
        true
    }

    /// Fault detection signal: advance to recovery epoch `epoch` (no-op unless it
    /// is newer than the local epoch).
    ///
    /// A bump resets every object's link pointer to the initial tree orientation
    /// — the initial root becomes every object's sink again, holding a
    /// *regenerated* token behind the virtual request `r0` — discards token state
    /// of already-granted requests (a token held across a bump is a ghost of the
    /// old epoch; its release becomes a no-op and stale-epoch sends of it are
    /// rejected by receivers), and re-issues every still-pending own request under
    /// its original request id, so transports' waiting maps stay valid.
    pub fn on_epoch(&mut self, epoch: u64, actions: &mut Vec<CoreAction>) {
        if epoch > self.epoch {
            self.bump_epoch(epoch, actions);
        }
    }

    fn bump_epoch(&mut self, epoch: u64, actions: &mut Vec<CoreAction>) {
        self.epoch = epoch;
        self.probe.record(ProbeEvent::EpochAdopted { epoch });
        let me = self.me;
        for state in &mut self.objects {
            state.link = self.initial_link;
            state.last_id = RequestId::ROOT;
        }
        // Granted tokens die with their epoch; pending requests survive and are
        // re-issued below, with any old-epoch successor linkage cleared.
        self.tokens.retain(|_, st| !st.granted);
        for st in self.tokens.values_mut() {
            st.released = false;
            st.successor = None;
        }
        let mut pending: Vec<(ObjectId, RequestId)> = self.tokens.keys().copied().collect();
        pending.sort();
        for (obj, req) in pending {
            let state = self.object_mut(obj);
            let previous = state.last_id;
            state.last_id = req;
            if state.link == me {
                self.queuing_complete(obj, previous, req, me, actions);
            } else {
                let target = state.link;
                state.link = me;
                // A re-issue, not a new request: no second RequestIssued event,
                // but the fresh hop chain is traced like any other.
                self.probe.record(ProbeEvent::QueueSent {
                    obj: obj.0,
                    req: req.0,
                    origin: me,
                    to: target,
                });
                actions.push(CoreAction::SendQueue {
                    to: target,
                    obj,
                    req,
                    origin: me,
                    epoch: self.epoch,
                });
            }
        }
    }

    fn fresh_request_id(&mut self) -> RequestId {
        // Unique across nodes (interleaved by node id) and across this node's
        // objects (one shared sequence). +1 keeps ids disjoint from the root id 0.
        let id = 1 + self.me as u64 + self.next_seq * self.total_nodes;
        self.next_seq += 1;
        RequestId(id)
    }

    fn object_mut(&mut self, obj: ObjectId) -> &mut ObjectState {
        let me = self.me;
        self.objects
            .get_mut(obj.0 as usize)
            .unwrap_or_else(|| panic!("node {me} does not serve object {obj}"))
    }

    /// Issue a queuing request for `obj` on behalf of the local application.
    /// Returns the fresh request id; the transport must remember it so a later
    /// [`CoreAction::Granted`] can wake the right waiter (possibly among `actions`
    /// already).
    ///
    /// # Panics
    /// If `obj` is out of range for this node.
    pub fn acquire(&mut self, obj: ObjectId, actions: &mut Vec<CoreAction>) -> RequestId {
        let req = self.fresh_request_id();
        self.tokens.insert((obj, req), TokenState::default());
        let me = self.me;
        self.probe.record(ProbeEvent::RequestIssued {
            obj: obj.0,
            req: req.0,
            origin: me,
        });
        let state = self.object_mut(obj);
        let previous = state.last_id;
        state.last_id = req;
        if state.link == me {
            // Local sink: req is queued directly behind our previous request.
            self.queuing_complete(obj, previous, req, me, actions);
        } else {
            let target = state.link;
            state.link = me;
            self.probe.record(ProbeEvent::QueueSent {
                obj: obj.0,
                req: req.0,
                origin: me,
                to: target,
            });
            actions.push(CoreAction::SendQueue {
                to: target,
                obj,
                req,
                origin: me,
                epoch: self.epoch,
            });
        }
        req
    }

    /// Arrow path reversal for one object: a `queue()` message for request `req`
    /// (issued at `origin`, stamped with the sender's `epoch`) arrived from tree
    /// neighbour `from`. Stale-epoch messages are dropped; newer ones fast-forward
    /// this node first.
    ///
    /// # Panics
    /// If `obj` is out of range for this node.
    pub fn on_queue(
        &mut self,
        from: NodeId,
        obj: ObjectId,
        req: RequestId,
        origin: NodeId,
        epoch: u64,
        actions: &mut Vec<CoreAction>,
    ) {
        if !self.admit_epoch(obj, epoch, actions) {
            return;
        }
        self.probe.record(ProbeEvent::QueueReceived {
            obj: obj.0,
            req: req.0,
            origin,
            from,
        });
        let me = self.me;
        let current = self.epoch;
        let state = self.object_mut(obj);
        let old_link = state.link;
        state.link = from;
        if old_link == me {
            let pred = state.last_id;
            self.queuing_complete(obj, pred, req, origin, actions);
        } else {
            self.probe.record(ProbeEvent::QueueSent {
                obj: obj.0,
                req: req.0,
                origin,
                to: old_link,
            });
            actions.push(CoreAction::SendQueue {
                to: old_link,
                obj,
                req,
                origin,
                epoch: current,
            });
        }
    }

    /// `obj`'s exclusion token arrived for this node's own request `req`, stamped
    /// with the sender's `epoch`. A stale-epoch token is a ghost of a pre-recovery
    /// epoch and is dropped — the request it would have granted has already been
    /// re-issued under the current epoch.
    pub fn on_token(
        &mut self,
        obj: ObjectId,
        req: RequestId,
        epoch: u64,
        actions: &mut Vec<CoreAction>,
    ) {
        if !self.admit_epoch(obj, epoch, actions) {
            return;
        }
        self.probe.record(ProbeEvent::TokenReceived {
            obj: obj.0,
            req: req.0,
        });
        self.token_received(obj, req, actions);
    }

    fn token_received(&mut self, obj: ObjectId, req: RequestId, actions: &mut Vec<CoreAction>) {
        self.tokens.entry((obj, req)).or_default().granted = true;
        // No TokenReceived event here: a local handoff (grant to self) has no
        // token flight, and the analysis reads its absence as grant_wait = 0.
        self.probe.record(ProbeEvent::Granted {
            obj: obj.0,
            req: req.0,
        });
        actions.push(CoreAction::Granted { obj, req });
    }

    /// The local application released `obj`'s token it held for `req`.
    ///
    /// A release of a token granted before an epoch bump finds no bookkeeping
    /// entry (the bump discarded it) and is a no-op: that token died with its
    /// epoch and must not grant anyone.
    pub fn on_release(&mut self, obj: ObjectId, req: RequestId, actions: &mut Vec<CoreAction>) {
        let Some(state) = self.tokens.get_mut(&(obj, req)) else {
            return;
        };
        self.probe.record(ProbeEvent::Released {
            obj: obj.0,
            req: req.0,
        });
        if let Some((succ, origin)) = state.successor.take() {
            self.tokens.remove(&(obj, req));
            self.grant(obj, succ, origin, actions);
        } else {
            state.released = true;
        }
    }

    /// Request `succ` (from `origin`) has been queued behind `pred` in `obj`'s queue,
    /// and `pred` lives here.
    fn queuing_complete(
        &mut self,
        obj: ObjectId,
        pred: RequestId,
        succ: RequestId,
        origin: NodeId,
        actions: &mut Vec<CoreAction>,
    ) {
        self.probe.record(ProbeEvent::QueuedBehind {
            obj: obj.0,
            req: succ.0,
            pred: pred.0,
            origin,
        });
        actions.push(CoreAction::Queued {
            obj,
            pred,
            succ,
            origin,
            epoch: self.epoch,
        });
        if pred.is_root() {
            // The token has been sitting at the object's initial root, already free.
            self.grant(obj, succ, origin, actions);
            return;
        }
        let state = self.tokens.entry((obj, pred)).or_default();
        if state.released {
            self.tokens.remove(&(obj, pred));
            self.grant(obj, succ, origin, actions);
        } else {
            state.successor = Some((succ, origin));
        }
    }

    /// Hand `obj`'s token to the node that issued `req`.
    fn grant(
        &mut self,
        obj: ObjectId,
        req: RequestId,
        origin: NodeId,
        actions: &mut Vec<CoreAction>,
    ) {
        if origin == self.me {
            self.token_received(obj, req, actions);
        } else {
            self.probe.record(ProbeEvent::TokenSent {
                obj: obj.0,
                req: req.0,
                to: origin,
            });
            actions.push(CoreAction::SendToken {
                to: origin,
                obj,
                req,
                epoch: self.epoch,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    fn tree(n: usize) -> RootedTree {
        RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0)
    }

    #[test]
    fn root_acquire_is_granted_locally() {
        let mut core = ArrowCore::for_tree(0, &tree(3), 1);
        let mut out = Vec::new();
        let req = core.acquire(ObjectId::DEFAULT, &mut out);
        // The root is the sink of its own virtual request r0, already released.
        assert_eq!(
            out,
            vec![
                CoreAction::Queued {
                    obj: ObjectId::DEFAULT,
                    pred: RequestId::ROOT,
                    succ: req,
                    origin: 0,
                    epoch: 0,
                },
                CoreAction::Granted {
                    obj: ObjectId::DEFAULT,
                    req,
                },
            ]
        );
    }

    #[test]
    fn non_root_acquire_sends_queue_towards_parent() {
        let t = tree(7);
        let mut core = ArrowCore::for_tree(5, &t, 1);
        let mut out = Vec::new();
        let req = core.acquire(ObjectId::DEFAULT, &mut out);
        assert_eq!(
            out,
            vec![CoreAction::SendQueue {
                to: t.parent(5).unwrap(),
                obj: ObjectId::DEFAULT,
                req,
                origin: 5,
                epoch: 0,
            }]
        );
    }

    #[test]
    fn queue_is_forwarded_along_old_link_with_path_reversal() {
        let t = tree(7);
        // Node 1's link initially points at its parent 0; a queue() arriving from
        // child 3 must be forwarded to 0 and the link must flip to 3.
        let mut core = ArrowCore::for_tree(1, &t, 1);
        let mut out = Vec::new();
        core.on_queue(3, ObjectId::DEFAULT, RequestId(9), 3, 0, &mut out);
        assert_eq!(
            out,
            vec![CoreAction::SendQueue {
                to: 0,
                obj: ObjectId::DEFAULT,
                req: RequestId(9),
                origin: 3,
                epoch: 0,
            }]
        );
        out.clear();
        // A second queue() arriving from 0 must now chase the flipped link to 3.
        core.on_queue(0, ObjectId::DEFAULT, RequestId(10), 6, 0, &mut out);
        assert_eq!(
            out,
            vec![CoreAction::SendQueue {
                to: 3,
                obj: ObjectId::DEFAULT,
                req: RequestId(10),
                origin: 6,
                epoch: 0,
            }]
        );
    }

    #[test]
    fn token_waits_for_release_then_travels_to_successor() {
        let mut core = ArrowCore::for_tree(0, &tree(3), 1);
        let mut out = Vec::new();
        let own = core.acquire(ObjectId::DEFAULT, &mut out);
        out.clear();
        // A remote request queues behind ours before we release.
        core.on_queue(1, ObjectId::DEFAULT, RequestId(40), 2, 0, &mut out);
        assert_eq!(
            out,
            vec![CoreAction::Queued {
                obj: ObjectId::DEFAULT,
                pred: own,
                succ: RequestId(40),
                origin: 2,
                epoch: 0,
            }],
            "token is still held: no grant yet"
        );
        out.clear();
        core.on_release(ObjectId::DEFAULT, own, &mut out);
        assert_eq!(
            out,
            vec![CoreAction::SendToken {
                to: 2,
                obj: ObjectId::DEFAULT,
                req: RequestId(40),
                epoch: 0,
            }]
        );
    }

    #[test]
    fn release_before_successor_known_hands_over_immediately_later() {
        let mut core = ArrowCore::for_tree(0, &tree(3), 1);
        let mut out = Vec::new();
        let own = core.acquire(ObjectId::DEFAULT, &mut out);
        out.clear();
        core.on_release(ObjectId::DEFAULT, own, &mut out);
        assert!(out.is_empty(), "no successor yet: nothing to do");
        core.on_queue(1, ObjectId::DEFAULT, RequestId(7), 1, 0, &mut out);
        assert_eq!(
            out,
            vec![
                CoreAction::Queued {
                    obj: ObjectId::DEFAULT,
                    pred: own,
                    succ: RequestId(7),
                    origin: 1,
                    epoch: 0,
                },
                CoreAction::SendToken {
                    to: 1,
                    obj: ObjectId::DEFAULT,
                    req: RequestId(7),
                    epoch: 0,
                },
            ]
        );
    }

    #[test]
    fn objects_have_independent_links_and_ids() {
        let t = tree(7);
        let mut core = ArrowCore::for_tree(2, &t, 2);
        assert_eq!(core.object_count(), 2);
        let mut out = Vec::new();
        let a = core.acquire(ObjectId(0), &mut out);
        let b = core.acquire(ObjectId(1), &mut out);
        assert_ne!(a, b, "one shared id sequence across objects");
        // Both queues were sent towards the parent independently.
        let targets: Vec<NodeId> = out
            .iter()
            .filter_map(|act| match act {
                CoreAction::SendQueue { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![t.parent(2).unwrap(), t.parent(2).unwrap()]);
    }

    #[test]
    fn request_ids_are_disjoint_across_nodes() {
        let t = tree(7);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for v in 0..7 {
            let mut core = ArrowCore::for_tree(v, &t, 1);
            for _ in 0..5 {
                assert!(seen.insert(core.acquire(ObjectId::DEFAULT, &mut out)));
            }
        }
        assert!(!seen.contains(&RequestId::ROOT));
    }

    #[test]
    #[should_panic(expected = "does not serve object")]
    fn out_of_range_object_panics() {
        let mut core = ArrowCore::for_tree(0, &tree(3), 1);
        let mut out = Vec::new();
        core.acquire(ObjectId(1), &mut out);
    }

    fn hash_of(core: &ArrowCore) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        core.hash_into(&mut h);
        h.finish()
    }

    #[test]
    fn snapshots_are_canonical_and_track_state_changes() {
        let t = tree(7);
        let mut a = ArrowCore::for_tree(3, &t, 2);
        let mut b = ArrowCore::for_tree(3, &t, 2);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(hash_of(&a), hash_of(&b));

        // Identical input sequences keep the snapshots (and hashes) equal even
        // though the token HashMaps were populated independently.
        let mut out = Vec::new();
        for core in [&mut a, &mut b] {
            core.acquire(ObjectId(0), &mut out);
            core.acquire(ObjectId(1), &mut out);
            core.on_queue(
                t.parent(3).unwrap(),
                ObjectId(0),
                RequestId(99),
                0,
                0,
                &mut out,
            );
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(hash_of(&a), hash_of(&b));

        // Any further input changes the snapshot.
        let before = a.snapshot();
        a.acquire(ObjectId(0), &mut out);
        assert_ne!(a.snapshot(), before);
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn snapshot_exposes_links_and_clone_is_independent() {
        let t = tree(7);
        let mut core = ArrowCore::for_tree(1, &t, 1);
        assert_eq!(core.link_of(ObjectId::DEFAULT), t.parent(1).unwrap());
        let frozen = core.clone();
        let mut out = Vec::new();
        core.acquire(ObjectId::DEFAULT, &mut out);
        // The issuing node becomes the object's sink; the clone is unaffected.
        assert_eq!(core.link_of(ObjectId::DEFAULT), 1);
        assert_eq!(core.snapshot().objects[0].0, 1);
        assert_eq!(frozen.snapshot().objects[0].0, t.parent(1).unwrap());
        assert_eq!(core.snapshot().tokens.len(), 1);
        assert!(frozen.snapshot().tokens.is_empty());
    }
}
