//! Distributed mutual exclusion on top of the live arrow runtime.
//!
//! This is the application the arrow protocol was invented for (Raymond '89): the
//! distributed queue orders the lock requests, and the exclusion token travels from
//! each request to its successor. [`DistributedLock`] gives a scoped-guard API;
//! [`CriticalSectionLog`] records entry/exit timestamps so tests and examples can
//! verify that no two critical sections ever overlap.

use super::runtime::NodeHandle;
use crate::request::RequestId;
use netgraph::NodeId;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

/// One completed critical section.
#[derive(Debug, Clone, Copy)]
pub struct SectionRecord {
    /// Node that held the lock.
    pub node: NodeId,
    /// The queuing request that granted it.
    pub request: RequestId,
    /// Entry time.
    pub entered: Instant,
    /// Exit time.
    pub exited: Instant,
}

/// A shared, thread-safe log of critical sections.
#[derive(Debug, Clone, Default)]
pub struct CriticalSectionLog {
    records: Arc<Mutex<Vec<SectionRecord>>>,
}

impl CriticalSectionLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the record list, recovering from poisoning: each record is pushed
    /// atomically, so a panic in some other holder cannot leave the Vec
    /// half-updated, and the log must stay readable from panicking tests.
    fn guard(&self) -> std::sync::MutexGuard<'_, Vec<SectionRecord>> {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Record one completed critical section.
    pub fn record(&self, record: SectionRecord) {
        self.guard().push(record);
    }

    /// All records so far.
    pub fn records(&self) -> Vec<SectionRecord> {
        self.guard().clone()
    }

    /// Number of completed critical sections.
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.guard().is_empty()
    }

    /// Check the mutual-exclusion invariant: no two recorded critical sections
    /// overlap in time. Returns the first offending pair if any.
    pub fn find_overlap(&self) -> Option<(SectionRecord, SectionRecord)> {
        let mut records = self.guard().clone();
        records.sort_by_key(|r| r.entered);
        for w in records.windows(2) {
            if w[1].entered < w[0].exited {
                return Some((w[0], w[1]));
            }
        }
        None
    }
}

/// A distributed lock held by the application at one node.
#[derive(Debug, Clone)]
pub struct DistributedLock {
    handle: NodeHandle,
    log: CriticalSectionLog,
}

impl DistributedLock {
    /// Create a lock front-end for the given node handle, recording critical sections
    /// into `log`.
    pub fn new(handle: NodeHandle, log: CriticalSectionLog) -> Self {
        DistributedLock { handle, log }
    }

    /// The node this lock front-end belongs to.
    pub fn node(&self) -> NodeId {
        self.handle.node()
    }

    /// Acquire the lock, blocking until this node holds the token. The returned guard
    /// releases the lock when dropped.
    pub fn lock(&self) -> LockGuard<'_> {
        let request = self.handle.acquire();
        LockGuard {
            lock: self,
            request,
            entered: Instant::now(),
        }
    }

    /// Run a closure inside the critical section.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.lock();
        f()
    }
}

/// Guard proving the holder is inside the critical section; releases on drop.
#[derive(Debug)]
pub struct LockGuard<'a> {
    lock: &'a DistributedLock,
    request: RequestId,
    entered: Instant,
}

impl LockGuard<'_> {
    /// The queuing request backing this acquisition.
    pub fn request(&self) -> RequestId {
        self.request
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        let exited = Instant::now();
        self.lock.log.record(SectionRecord {
            node: self.lock.node(),
            request: self.request,
            entered: self.entered,
            exited,
        });
        self.lock.handle.release(self.request);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::ArrowRuntime;
    use netgraph::{generators, RootedTree};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn runtime(n: usize) -> ArrowRuntime {
        let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0);
        ArrowRuntime::spawn(&tree)
    }

    #[test]
    fn lock_guard_records_a_section() {
        let rt = runtime(3);
        let log = CriticalSectionLog::new();
        let lock = DistributedLock::new(rt.handle(2), log.clone());
        {
            let guard = lock.lock();
            assert!(!guard.request().is_root());
        }
        assert_eq!(log.len(), 1);
        assert!(log.find_overlap().is_none());
        rt.shutdown();
    }

    #[test]
    fn mutual_exclusion_holds_under_contention() {
        let n = 8;
        let rt = Arc::new(runtime(n));
        let log = CriticalSectionLog::new();
        let counter = Arc::new(AtomicU64::new(0));
        let mut unsafe_counter = Arc::new(Mutex::new(0u64));

        let mut joins = Vec::new();
        for v in 0..n {
            let lock = DistributedLock::new(rt.handle(v), log.clone());
            let counter = Arc::clone(&counter);
            let unsafe_counter = Arc::clone(&unsafe_counter);
            joins.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    lock.with(|| {
                        // A read-modify-write that is only correct under mutual exclusion.
                        let mut guard = unsafe_counter.lock().unwrap();
                        let v = *guard;
                        std::thread::yield_now();
                        *guard = v + 1;
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), (n as u64) * 20);
        assert_eq!(
            *Arc::get_mut(&mut unsafe_counter)
                .unwrap()
                .get_mut()
                .unwrap(),
            (n as u64) * 20
        );
        assert_eq!(log.len(), n * 20);
        assert!(
            log.find_overlap().is_none(),
            "two critical sections overlapped"
        );
        Arc::try_unwrap(rt).ok().unwrap().shutdown();
    }

    #[test]
    fn with_returns_the_closure_result() {
        let rt = runtime(3);
        let log = CriticalSectionLog::new();
        let lock = DistributedLock::new(rt.handle(1), log.clone());
        let result = lock.with(|| 21 * 2);
        assert_eq!(result, 42);
        assert_eq!(log.len(), 1);
        rt.shutdown();
    }
}
