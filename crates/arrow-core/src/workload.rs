//! Workload generators.
//!
//! The analysis covers *any* finite request set, so the experiments exercise several
//! shapes: the one-shot concurrent burst (the PODC'01 setting), sequential requests
//! spaced farther apart than the tree diameter (the Demmer–Herlihy setting), Poisson
//! arrivals, hotspot-skewed arrivals, and alternating burst/quiet phases (the regime
//! discussed around Lemma 3.11). The paper's own experiment (Section 5) is a
//! *closed-loop* workload — each processor issues its next request the moment its
//! previous one completes — which cannot be written down as a schedule in advance and
//! is therefore described by [`ClosedLoopSpec`] and generated inside the protocol
//! nodes at run time.

use crate::request::{ObjectId, RequestSchedule};
use desim::{SimRng, SimTime};
use netgraph::NodeId;
use serde::{Deserialize, Serialize};

/// Parameters of the closed-loop workload of Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopSpec {
    /// How many requests each node issues (the paper uses 100,000).
    pub requests_per_node: u64,
    /// Local service time (in time units) a node spends per protocol message and
    /// between completing one request and issuing the next. Models the CPU cost that
    /// the paper's SP2 processors pay; without it the simulated central server would
    /// have infinite throughput and the centralized baseline would not degrade.
    pub local_service_time: f64,
}

impl Default for ClosedLoopSpec {
    fn default() -> Self {
        ClosedLoopSpec {
            requests_per_node: 1_000,
            local_service_time: 0.05,
        }
    }
}

/// A workload: either a pre-computed open-loop schedule or a closed-loop spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Workload {
    /// Requests issued at predetermined `(node, time)` pairs.
    OpenLoop(RequestSchedule),
    /// Each node issues its next request as soon as the previous one completes.
    ClosedLoop(ClosedLoopSpec),
}

/// All nodes in `nodes` issue one request simultaneously at `time` — the one-shot
/// concurrent setting of the PODC 2001 paper.
pub fn one_shot_burst(nodes: &[NodeId], time: SimTime) -> RequestSchedule {
    RequestSchedule::from_pairs(&nodes.iter().map(|&v| (v, time)).collect::<Vec<_>>())
}

/// `count` requests issued round-robin by `nodes`, each `gap` time units after the
/// previous one. With `gap > D` this is the sequential setting of Demmer–Herlihy.
pub fn sequential_round_robin(nodes: &[NodeId], count: usize, gap: f64) -> RequestSchedule {
    assert!(!nodes.is_empty(), "need at least one requesting node");
    let pairs: Vec<(NodeId, SimTime)> = (0..count)
        .map(|i| {
            (
                nodes[i % nodes.len()],
                SimTime::from_subticks(
                    (i as f64 * gap * desim::SUBTICKS_PER_UNIT as f64).round() as u64
                ),
            )
        })
        .collect();
    RequestSchedule::from_pairs(&pairs)
}

/// Poisson arrivals: each of the `n` nodes issues requests as an independent Poisson
/// process with the given mean inter-arrival time, until `horizon` time units.
pub fn poisson(n: usize, mean_interarrival: f64, horizon: f64, seed: u64) -> RequestSchedule {
    assert!(
        mean_interarrival > 0.0,
        "mean inter-arrival must be positive"
    );
    let mut rng = SimRng::new(seed);
    let mut pairs = Vec::new();
    for node in 0..n {
        let mut t = rng.exponential(mean_interarrival);
        while t < horizon {
            pairs.push((
                node,
                SimTime::from_subticks((t * desim::SUBTICKS_PER_UNIT as f64) as u64),
            ));
            t += rng.exponential(mean_interarrival);
        }
    }
    RequestSchedule::from_pairs(&pairs)
}

/// `count` requests at uniformly random nodes and uniformly random times in
/// `[0, horizon)`.
pub fn uniform_random(n: usize, count: usize, horizon: f64, seed: u64) -> RequestSchedule {
    let mut rng = SimRng::new(seed);
    let pairs: Vec<(NodeId, SimTime)> = (0..count)
        .map(|_| {
            (
                rng.index(n),
                SimTime::from_subticks(
                    (rng.uniform(0.0, horizon.max(f64::MIN_POSITIVE))
                        * desim::SUBTICKS_PER_UNIT as f64) as u64,
                ),
            )
        })
        .collect();
    RequestSchedule::from_pairs(&pairs)
}

/// Hotspot workload: a fraction `hot_fraction` of the `count` requests originate from
/// the `hot_nodes` set, the rest from uniformly random nodes; times uniform in
/// `[0, horizon)`.
pub fn hotspot(
    n: usize,
    hot_nodes: &[NodeId],
    hot_fraction: f64,
    count: usize,
    horizon: f64,
    seed: u64,
) -> RequestSchedule {
    assert!(!hot_nodes.is_empty(), "need at least one hot node");
    let mut rng = SimRng::new(seed);
    let pairs: Vec<(NodeId, SimTime)> = (0..count)
        .map(|_| {
            let node = if rng.chance(hot_fraction.clamp(0.0, 1.0)) {
                hot_nodes[rng.index(hot_nodes.len())]
            } else {
                rng.index(n)
            };
            let t = rng.uniform(0.0, horizon.max(f64::MIN_POSITIVE));
            (
                node,
                SimTime::from_subticks((t * desim::SUBTICKS_PER_UNIT as f64) as u64),
            )
        })
        .collect();
    RequestSchedule::from_pairs(&pairs)
}

/// Alternating activity: `phases` bursts, each with `burst_size` near-simultaneous
/// requests from random nodes, separated by `quiet_gap` units of silence. This is the
/// "times of high activity alternate with times where no request is placed" regime
/// discussed before Lemma 3.11.
pub fn bursty_phases(
    n: usize,
    phases: usize,
    burst_size: usize,
    quiet_gap: f64,
    seed: u64,
) -> RequestSchedule {
    let mut rng = SimRng::new(seed);
    let mut pairs = Vec::new();
    for phase in 0..phases {
        let base = phase as f64 * quiet_gap;
        for _ in 0..burst_size {
            let jitter = rng.uniform(0.0, 1.0);
            pairs.push((
                rng.index(n),
                SimTime::from_subticks(((base + jitter) * desim::SUBTICKS_PER_UNIT as f64) as u64),
            ));
        }
    }
    RequestSchedule::from_pairs(&pairs)
}

/// Cumulative distribution over `k` objects with Zipf-skewed popularity: object `r`
/// (0-indexed) has weight `1 / (r + 1)^s`. Higher `s` = heavier skew; `s = 0` is
/// uniform.
fn zipf_cdf(k: usize, s: f64) -> Vec<f64> {
    assert!(k > 0, "need at least one object");
    let mut cdf = Vec::with_capacity(k);
    let mut acc = 0.0;
    for r in 0..k {
        acc += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = *cdf.last().expect("k > 0");
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

fn sample_cdf(cdf: &[f64], rng: &mut SimRng) -> usize {
    let u = rng.uniform(0.0, 1.0);
    cdf.partition_point(|&c| c <= u).min(cdf.len() - 1)
}

/// Multi-object workload with Zipf-skewed object popularity: `count` requests at
/// uniformly random nodes and uniformly random times in `[0, horizon)`, each for one
/// of `k` objects drawn from a Zipf distribution with exponent `s` (object 0 is the
/// most popular; `s = 0` makes all objects equally popular).
///
/// This is the canonical directory workload: a few hot objects absorb most of the
/// traffic while a long tail of cold objects sees occasional requests.
pub fn zipf_objects(
    n: usize,
    k: usize,
    s: f64,
    count: usize,
    horizon: f64,
    seed: u64,
) -> RequestSchedule {
    let cdf = zipf_cdf(k, s);
    let mut rng = SimRng::new(seed);
    let triples: Vec<(NodeId, SimTime, ObjectId)> = (0..count)
        .map(|_| {
            let node = rng.index(n);
            let obj = ObjectId(sample_cdf(&cdf, &mut rng) as u32);
            let t = rng.uniform(0.0, horizon.max(f64::MIN_POSITIVE));
            (
                node,
                SimTime::from_subticks((t * desim::SUBTICKS_PER_UNIT as f64) as u64),
                obj,
            )
        })
        .collect();
    RequestSchedule::from_object_pairs(&triples)
}

/// Multi-object workload with per-object migrating hotspots: time is divided into
/// `phases` windows of `phase_len` units; within each window, each of the `k` objects
/// has its own hot node (chosen pseudo-randomly per `(object, phase)`) that issues a
/// fraction `hot_fraction` of that object's requests, the rest coming from uniformly
/// random nodes. Each phase sees `requests_per_phase` requests, spread uniformly over
/// objects and over the window.
///
/// This models a directory whose objects' working sets drift: the paper's analysis
/// (and arrow's locality) should keep per-object traffic near the current hotspot,
/// re-rooting each object's arrows as the hotspot moves.
pub fn object_hotspot_migration(
    n: usize,
    k: usize,
    phases: usize,
    requests_per_phase: usize,
    phase_len: f64,
    hot_fraction: f64,
    seed: u64,
) -> RequestSchedule {
    assert!(k > 0, "need at least one object");
    assert!(n > 0, "need at least one node");
    let mut rng = SimRng::new(seed);
    // Pre-draw each phase's per-object hot nodes so the migration path is part of
    // the workload's deterministic identity.
    let hot: Vec<Vec<NodeId>> = (0..phases)
        .map(|_| (0..k).map(|_| rng.index(n)).collect())
        .collect();
    let mut triples = Vec::with_capacity(phases * requests_per_phase);
    for (phase, hot_nodes) in hot.iter().enumerate() {
        let base = phase as f64 * phase_len;
        for i in 0..requests_per_phase {
            let obj = i % k;
            let node = if rng.chance(hot_fraction.clamp(0.0, 1.0)) {
                hot_nodes[obj]
            } else {
                rng.index(n)
            };
            let t = base + rng.uniform(0.0, phase_len.max(f64::MIN_POSITIVE));
            triples.push((
                node,
                SimTime::from_subticks((t * desim::SUBTICKS_PER_UNIT as f64) as u64),
                ObjectId(obj as u32),
            ));
        }
    }
    RequestSchedule::from_object_pairs(&triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_burst_is_simultaneous() {
        let s = one_shot_burst(&[0, 3, 5], SimTime::from_units(2));
        assert_eq!(s.len(), 3);
        assert!(s
            .requests()
            .iter()
            .all(|r| r.time == SimTime::from_units(2)));
        assert_eq!(s.requesting_nodes(), vec![0, 3, 5]);
    }

    #[test]
    fn sequential_round_robin_spacing_and_rotation() {
        let s = sequential_round_robin(&[1, 2], 4, 10.0);
        let nodes: Vec<NodeId> = s.requests().iter().map(|r| r.node).collect();
        assert_eq!(nodes, vec![1, 2, 1, 2]);
        assert!(s.is_sequential(10.0));
        assert!(!s.is_sequential(10.5));
        assert_eq!(s.requests()[3].time, SimTime::from_units(30));
    }

    #[test]
    fn poisson_respects_horizon_and_is_deterministic() {
        let a = poisson(5, 2.0, 50.0, 7);
        let b = poisson(5, 2.0, 50.0, 7);
        assert_eq!(a.len(), b.len());
        assert!(
            a.len() > 25,
            "expected on the order of 125 requests, got {}",
            a.len()
        );
        assert!(a
            .requests()
            .iter()
            .all(|r| r.time < SimTime::from_units(50)));
    }

    #[test]
    fn uniform_random_counts_and_bounds() {
        let s = uniform_random(10, 200, 30.0, 3);
        assert_eq!(s.len(), 200);
        assert!(s.requests().iter().all(|r| r.node < 10));
        assert!(s
            .requests()
            .iter()
            .all(|r| r.time < SimTime::from_units(30)));
    }

    #[test]
    fn hotspot_skews_origins() {
        let s = hotspot(20, &[0], 0.9, 500, 10.0, 5);
        let hot_count = s.requests().iter().filter(|r| r.node == 0).count();
        assert!(hot_count > 350, "hot node got only {hot_count}/500");
    }

    #[test]
    fn bursty_phases_have_quiet_gaps() {
        let s = bursty_phases(8, 3, 10, 100.0, 11);
        assert_eq!(s.len(), 30);
        // All requests of phase p are within [100p, 100p + 1).
        for r in s.requests() {
            let t = r.time.as_units_f64();
            let phase = (t / 100.0).floor();
            assert!(t - phase * 100.0 < 1.0 + 1e-9);
        }
    }

    #[test]
    fn zipf_objects_skews_towards_low_object_ids() {
        let k = 8;
        let s = zipf_objects(16, k, 1.2, 4000, 100.0, 9);
        assert_eq!(s.len(), 4000);
        assert_eq!(s.object_id_bound(), k);
        let count_for = |o: u32| s.requests().iter().filter(|r| r.obj == ObjectId(o)).count();
        let hottest = count_for(0);
        let coldest = count_for(k as u32 - 1);
        // Zipf(1.2) over 8 objects: object 0 gets ~40%, object 7 ~3%.
        assert!(
            hottest > 4 * coldest,
            "expected heavy skew, got {hottest} vs {coldest}"
        );
        // Deterministic in the seed.
        let again = zipf_objects(16, k, 1.2, 4000, 100.0, 9);
        assert_eq!(s.requests(), again.requests());
    }

    #[test]
    fn zipf_with_zero_exponent_is_roughly_uniform() {
        let k = 4;
        let s = zipf_objects(8, k, 0.0, 4000, 50.0, 3);
        for o in 0..k as u32 {
            let c = s.requests().iter().filter(|r| r.obj == ObjectId(o)).count();
            assert!((800..1200).contains(&c), "object {o} got {c}/4000");
        }
    }

    #[test]
    fn hotspot_migration_concentrates_each_phase() {
        let n = 20;
        let k = 3;
        let phases = 4;
        let per_phase = 300;
        let s = object_hotspot_migration(n, k, phases, per_phase, 50.0, 0.9, 7);
        assert_eq!(s.len(), phases * per_phase);
        assert_eq!(s.object_id_bound(), k);
        // Within each (phase, object) bucket, some single node dominates.
        for phase in 0..phases {
            let lo = SimTime::from_subticks(
                (phase as f64 * 50.0 * desim::SUBTICKS_PER_UNIT as f64) as u64,
            );
            let hi = SimTime::from_subticks(
                ((phase + 1) as f64 * 50.0 * desim::SUBTICKS_PER_UNIT as f64) as u64,
            );
            for obj in 0..k as u32 {
                let bucket: Vec<NodeId> = s
                    .requests()
                    .iter()
                    .filter(|r| r.obj == ObjectId(obj) && r.time >= lo && r.time < hi)
                    .map(|r| r.node)
                    .collect();
                assert!(!bucket.is_empty());
                let mut counts = vec![0usize; n];
                for &v in &bucket {
                    counts[v] += 1;
                }
                let dominant = counts.iter().max().copied().unwrap_or(0);
                assert!(
                    dominant * 2 > bucket.len(),
                    "phase {phase} object {obj}: no dominant hotspot ({dominant}/{})",
                    bucket.len()
                );
            }
        }
    }

    #[test]
    fn closed_loop_default_is_sane() {
        let spec = ClosedLoopSpec::default();
        assert!(spec.requests_per_node > 0);
        assert!(spec.local_service_time > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one requesting node")]
    fn empty_round_robin_panics() {
        sequential_round_robin(&[], 3, 1.0);
    }
}
