//! Workload generators.
//!
//! The analysis covers *any* finite request set, so the experiments exercise several
//! shapes: the one-shot concurrent burst (the PODC'01 setting), sequential requests
//! spaced farther apart than the tree diameter (the Demmer–Herlihy setting), Poisson
//! arrivals, hotspot-skewed arrivals, and alternating burst/quiet phases (the regime
//! discussed around Lemma 3.11). The paper's own experiment (Section 5) is a
//! *closed-loop* workload — each processor issues its next request the moment its
//! previous one completes — which cannot be written down as a schedule in advance and
//! is therefore described by [`ClosedLoopSpec`] and generated inside the protocol
//! nodes at run time.

use crate::request::RequestSchedule;
use desim::{SimRng, SimTime};
use netgraph::NodeId;
use serde::{Deserialize, Serialize};

/// Parameters of the closed-loop workload of Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopSpec {
    /// How many requests each node issues (the paper uses 100,000).
    pub requests_per_node: u64,
    /// Local service time (in time units) a node spends per protocol message and
    /// between completing one request and issuing the next. Models the CPU cost that
    /// the paper's SP2 processors pay; without it the simulated central server would
    /// have infinite throughput and the centralized baseline would not degrade.
    pub local_service_time: f64,
}

impl Default for ClosedLoopSpec {
    fn default() -> Self {
        ClosedLoopSpec {
            requests_per_node: 1_000,
            local_service_time: 0.05,
        }
    }
}

/// A workload: either a pre-computed open-loop schedule or a closed-loop spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Workload {
    /// Requests issued at predetermined `(node, time)` pairs.
    OpenLoop(RequestSchedule),
    /// Each node issues its next request as soon as the previous one completes.
    ClosedLoop(ClosedLoopSpec),
}

/// All nodes in `nodes` issue one request simultaneously at `time` — the one-shot
/// concurrent setting of the PODC 2001 paper.
pub fn one_shot_burst(nodes: &[NodeId], time: SimTime) -> RequestSchedule {
    RequestSchedule::from_pairs(&nodes.iter().map(|&v| (v, time)).collect::<Vec<_>>())
}

/// `count` requests issued round-robin by `nodes`, each `gap` time units after the
/// previous one. With `gap > D` this is the sequential setting of Demmer–Herlihy.
pub fn sequential_round_robin(nodes: &[NodeId], count: usize, gap: f64) -> RequestSchedule {
    assert!(!nodes.is_empty(), "need at least one requesting node");
    let pairs: Vec<(NodeId, SimTime)> = (0..count)
        .map(|i| {
            (
                nodes[i % nodes.len()],
                SimTime::from_subticks(
                    (i as f64 * gap * desim::SUBTICKS_PER_UNIT as f64).round() as u64
                ),
            )
        })
        .collect();
    RequestSchedule::from_pairs(&pairs)
}

/// Poisson arrivals: each of the `n` nodes issues requests as an independent Poisson
/// process with the given mean inter-arrival time, until `horizon` time units.
pub fn poisson(n: usize, mean_interarrival: f64, horizon: f64, seed: u64) -> RequestSchedule {
    assert!(
        mean_interarrival > 0.0,
        "mean inter-arrival must be positive"
    );
    let mut rng = SimRng::new(seed);
    let mut pairs = Vec::new();
    for node in 0..n {
        let mut t = rng.exponential(mean_interarrival);
        while t < horizon {
            pairs.push((
                node,
                SimTime::from_subticks((t * desim::SUBTICKS_PER_UNIT as f64) as u64),
            ));
            t += rng.exponential(mean_interarrival);
        }
    }
    RequestSchedule::from_pairs(&pairs)
}

/// `count` requests at uniformly random nodes and uniformly random times in
/// `[0, horizon)`.
pub fn uniform_random(n: usize, count: usize, horizon: f64, seed: u64) -> RequestSchedule {
    let mut rng = SimRng::new(seed);
    let pairs: Vec<(NodeId, SimTime)> = (0..count)
        .map(|_| {
            (
                rng.index(n),
                SimTime::from_subticks(
                    (rng.uniform(0.0, horizon.max(f64::MIN_POSITIVE))
                        * desim::SUBTICKS_PER_UNIT as f64) as u64,
                ),
            )
        })
        .collect();
    RequestSchedule::from_pairs(&pairs)
}

/// Hotspot workload: a fraction `hot_fraction` of the `count` requests originate from
/// the `hot_nodes` set, the rest from uniformly random nodes; times uniform in
/// `[0, horizon)`.
pub fn hotspot(
    n: usize,
    hot_nodes: &[NodeId],
    hot_fraction: f64,
    count: usize,
    horizon: f64,
    seed: u64,
) -> RequestSchedule {
    assert!(!hot_nodes.is_empty(), "need at least one hot node");
    let mut rng = SimRng::new(seed);
    let pairs: Vec<(NodeId, SimTime)> = (0..count)
        .map(|_| {
            let node = if rng.chance(hot_fraction.clamp(0.0, 1.0)) {
                hot_nodes[rng.index(hot_nodes.len())]
            } else {
                rng.index(n)
            };
            let t = rng.uniform(0.0, horizon.max(f64::MIN_POSITIVE));
            (
                node,
                SimTime::from_subticks((t * desim::SUBTICKS_PER_UNIT as f64) as u64),
            )
        })
        .collect();
    RequestSchedule::from_pairs(&pairs)
}

/// Alternating activity: `phases` bursts, each with `burst_size` near-simultaneous
/// requests from random nodes, separated by `quiet_gap` units of silence. This is the
/// "times of high activity alternate with times where no request is placed" regime
/// discussed before Lemma 3.11.
pub fn bursty_phases(
    n: usize,
    phases: usize,
    burst_size: usize,
    quiet_gap: f64,
    seed: u64,
) -> RequestSchedule {
    let mut rng = SimRng::new(seed);
    let mut pairs = Vec::new();
    for phase in 0..phases {
        let base = phase as f64 * quiet_gap;
        for _ in 0..burst_size {
            let jitter = rng.uniform(0.0, 1.0);
            pairs.push((
                rng.index(n),
                SimTime::from_subticks(((base + jitter) * desim::SUBTICKS_PER_UNIT as f64) as u64),
            ));
        }
    }
    RequestSchedule::from_pairs(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_burst_is_simultaneous() {
        let s = one_shot_burst(&[0, 3, 5], SimTime::from_units(2));
        assert_eq!(s.len(), 3);
        assert!(s
            .requests()
            .iter()
            .all(|r| r.time == SimTime::from_units(2)));
        assert_eq!(s.requesting_nodes(), vec![0, 3, 5]);
    }

    #[test]
    fn sequential_round_robin_spacing_and_rotation() {
        let s = sequential_round_robin(&[1, 2], 4, 10.0);
        let nodes: Vec<NodeId> = s.requests().iter().map(|r| r.node).collect();
        assert_eq!(nodes, vec![1, 2, 1, 2]);
        assert!(s.is_sequential(10.0));
        assert!(!s.is_sequential(10.5));
        assert_eq!(s.requests()[3].time, SimTime::from_units(30));
    }

    #[test]
    fn poisson_respects_horizon_and_is_deterministic() {
        let a = poisson(5, 2.0, 50.0, 7);
        let b = poisson(5, 2.0, 50.0, 7);
        assert_eq!(a.len(), b.len());
        assert!(
            a.len() > 25,
            "expected on the order of 125 requests, got {}",
            a.len()
        );
        assert!(a
            .requests()
            .iter()
            .all(|r| r.time < SimTime::from_units(50)));
    }

    #[test]
    fn uniform_random_counts_and_bounds() {
        let s = uniform_random(10, 200, 30.0, 3);
        assert_eq!(s.len(), 200);
        assert!(s.requests().iter().all(|r| r.node < 10));
        assert!(s
            .requests()
            .iter()
            .all(|r| r.time < SimTime::from_units(30)));
    }

    #[test]
    fn hotspot_skews_origins() {
        let s = hotspot(20, &[0], 0.9, 500, 10.0, 5);
        let hot_count = s.requests().iter().filter(|r| r.node == 0).count();
        assert!(hot_count > 350, "hot node got only {hot_count}/500");
    }

    #[test]
    fn bursty_phases_have_quiet_gaps() {
        let s = bursty_phases(8, 3, 10, 100.0, 11);
        assert_eq!(s.len(), 30);
        // All requests of phase p are within [100p, 100p + 1).
        for r in s.requests() {
            let t = r.time.as_units_f64();
            let phase = (t / 100.0).floor();
            assert!(t - phase * 100.0 < 1.0 + 1e-9);
        }
    }

    #[test]
    fn closed_loop_default_is_sane() {
        let spec = ClosedLoopSpec::default();
        assert!(spec.requests_per_node > 0);
        assert!(spec.local_service_time > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one requesting node")]
    fn empty_round_robin_panics() {
        sequential_round_robin(&[], 3, 1.0);
    }
}
