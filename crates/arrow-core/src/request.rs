//! Queuing requests and request schedules.
//!
//! In the paper's model (Section 3.1) a queuing request is an ordered pair `(v, t)`:
//! the node `v` where it was issued and the time `t` at which it was issued. A problem
//! instance is a finite set `R` of such requests, indexed in order of non-decreasing
//! issue time. The special "virtual" request `r0 = (root, 0)` represents the initial
//! tail of the queue held by the root.
//!
//! A *directory* deployment (the Demmer–Herlihy setting the paper builds on) serves
//! many mobile objects over one spanning tree, each object with its own independent
//! arrow state and hence its own queue. [`ObjectId`] names the object a request is
//! for; single-object workloads use [`ObjectId::DEFAULT`] throughout and never need
//! to mention it.

use desim::SimTime;
use netgraph::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a mobile object served by the directory tree.
///
/// Every object has fully independent arrow state (per-object `link`/`id` at every
/// node) and its own total queuing order; objects share only the spanning tree and
/// the physical links. Object `0` is the [`ObjectId::DEFAULT`] used by all
/// single-object APIs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The object implied by all single-object APIs.
    pub const DEFAULT: ObjectId = ObjectId(0);
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Globally unique identifier of a queuing request.
///
/// Id `0` is reserved for the virtual root request `r0`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl RequestId {
    /// The virtual root request `r0 = (root, 0)` that heads every queue.
    pub const ROOT: RequestId = RequestId(0);

    /// True if this is the virtual root request.
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_root() {
            write!(f, "r0")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// A queuing request `(v, t)` with a unique id, for one object of the directory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id (never [`RequestId::ROOT`] for real requests). Ids are unique across
    /// the whole schedule, not merely per object.
    pub id: RequestId,
    /// Node at which the request is issued.
    pub node: NodeId,
    /// Time at which the request is issued.
    pub time: SimTime,
    /// The object being requested ([`ObjectId::DEFAULT`] for single-object runs).
    pub obj: ObjectId,
}

/// A finite set of queuing requests, stored in non-decreasing time order
/// (the indexing convention of Section 3.1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RequestSchedule {
    requests: Vec<Request>,
    /// Index from request id to position in `requests`, for O(1) lookups on the very
    /// large closed-loop schedules (millions of requests).
    #[serde(skip)]
    index: std::collections::HashMap<RequestId, usize>,
}

impl RequestSchedule {
    fn build(requests: Vec<Request>) -> Self {
        let index = requests
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id, i))
            .collect();
        RequestSchedule { requests, index }
    }

    /// Build a single-object schedule from `(node, time)` pairs; ids are assigned
    /// `1..=len` in non-decreasing time order and every request is for
    /// [`ObjectId::DEFAULT`].
    pub fn from_pairs(pairs: &[(NodeId, SimTime)]) -> Self {
        let triples: Vec<(NodeId, SimTime, ObjectId)> = pairs
            .iter()
            .map(|&(node, time)| (node, time, ObjectId::DEFAULT))
            .collect();
        RequestSchedule::from_object_pairs(&triples)
    }

    /// Build a multi-object schedule from `(node, time, object)` triples; ids are
    /// assigned `1..=len` in non-decreasing time order, globally across objects.
    pub fn from_object_pairs(triples: &[(NodeId, SimTime, ObjectId)]) -> Self {
        let mut indexed: Vec<(NodeId, SimTime, ObjectId)> = triples.to_vec();
        indexed.sort_by_key(|&(node, time, obj)| (time, node, obj));
        let requests = indexed
            .into_iter()
            .enumerate()
            .map(|(i, (node, time, obj))| Request {
                id: RequestId(i as u64 + 1),
                node,
                time,
                obj,
            })
            .collect();
        RequestSchedule::build(requests)
    }

    /// Build a schedule from explicit requests.
    ///
    /// # Panics
    /// If ids are not unique, any id is the reserved root id, or the requests are not
    /// sorted by non-decreasing time.
    pub fn from_requests(requests: Vec<Request>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for r in &requests {
            assert!(!r.id.is_root(), "request id 0 is reserved for the root");
            assert!(seen.insert(r.id), "duplicate request id {:?}", r.id);
        }
        for w in requests.windows(2) {
            assert!(
                w[0].time <= w[1].time,
                "requests must be sorted by non-decreasing time"
            );
        }
        RequestSchedule::build(requests)
    }

    /// The requests in non-decreasing time order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if there are no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Look up a request by id in O(1).
    pub fn get(&self, id: RequestId) -> Option<&Request> {
        if let Some(&i) = self.index.get(&id) {
            return self.requests.get(i);
        }
        // The index is skipped by serde; fall back to a scan for deserialized values.
        self.requests.iter().find(|r| r.id == id)
    }

    /// Largest issue time in the schedule (`SimTime::ZERO` if empty) — the `t_|R|`
    /// appearing in Lemmas 3.10 and 3.16.
    pub fn last_issue_time(&self) -> SimTime {
        self.requests
            .iter()
            .map(|r| r.time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The distinct nodes that issue at least one request.
    pub fn requesting_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.requests.iter().map(|r| r.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The distinct objects requested at least once, in ascending id order.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut objs: Vec<ObjectId> = self.requests.iter().map(|r| r.obj).collect();
        objs.sort_unstable();
        objs.dedup();
        objs
    }

    /// Size of the directory this schedule needs: `max object id + 1` (at least 1,
    /// so an empty schedule still describes a single-object system). This bounds the
    /// per-node state to allocate and can exceed [`RequestSchedule::objects`]`.len()`
    /// when object ids are sparse; the number of objects *touched* is
    /// `objects().len()` (which is also what [`QueuingOutcome::object_count`]
    /// reports after a run).
    ///
    /// [`QueuingOutcome::object_count`]: crate::run::QueuingOutcome::object_count
    pub fn object_id_bound(&self) -> usize {
        self.requests
            .iter()
            .map(|r| r.obj.0 as usize + 1)
            .max()
            .unwrap_or(1)
    }

    /// The sub-schedule of requests for one object (ids and times preserved).
    /// Per-object queuing orders are validated against these sub-schedules.
    pub fn for_object(&self, obj: ObjectId) -> RequestSchedule {
        RequestSchedule::build(
            self.requests
                .iter()
                .filter(|r| r.obj == obj)
                .copied()
                .collect(),
        )
    }

    /// True if no two requests are ever concurrently active given that a request
    /// issued at time `t` completes within `diameter` time units — the *sequential*
    /// setting analysed by Demmer and Herlihy (Section 1.1).
    pub fn is_sequential(&self, diameter: f64) -> bool {
        self.requests.windows(2).all(|w| {
            let gap = (w[1].time - w[0].time).as_units_f64();
            gap >= diameter
        })
    }

    /// Shift every request issued at or after `threshold` earlier by `delta` units —
    /// the time-compression transformation of Lemma 3.11 (used by the analysis tests).
    pub fn shifted_back(&self, threshold: SimTime, delta: f64) -> RequestSchedule {
        let shifted =
            self.requests
                .iter()
                .map(|r| {
                    if r.time >= threshold {
                        Request {
                            time: SimTime::from_subticks(r.time.subticks().saturating_sub(
                                desim::SimDuration::from_units_f64(delta).subticks(),
                            )),
                            ..*r
                        }
                    } else {
                        *r
                    }
                })
                .collect::<Vec<_>>();
        let mut sorted = shifted;
        sorted.sort_by_key(|r| (r.time, r.id));
        RequestSchedule::build(sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_assigned_in_time_order() {
        let s = RequestSchedule::from_pairs(&[
            (3, SimTime::from_units(5)),
            (1, SimTime::from_units(0)),
            (2, SimTime::from_units(2)),
        ]);
        let nodes: Vec<NodeId> = s.requests().iter().map(|r| r.node).collect();
        assert_eq!(nodes, vec![1, 2, 3]);
        let ids: Vec<u64> = s.requests().iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(s.last_issue_time(), SimTime::from_units(5));
        assert_eq!(s.requesting_nodes(), vec![1, 2, 3]);
    }

    #[test]
    fn multi_object_schedule_splits_per_object() {
        let s = RequestSchedule::from_object_pairs(&[
            (0, SimTime::from_units(0), ObjectId(1)),
            (1, SimTime::from_units(1), ObjectId(0)),
            (2, SimTime::from_units(2), ObjectId(1)),
            (3, SimTime::from_units(3), ObjectId(3)),
        ]);
        assert_eq!(s.objects(), vec![ObjectId(0), ObjectId(1), ObjectId(3)]);
        assert_eq!(s.object_id_bound(), 4);
        let o1 = s.for_object(ObjectId(1));
        assert_eq!(o1.len(), 2);
        assert!(o1.requests().iter().all(|r| r.obj == ObjectId(1)));
        // Ids are preserved from the parent schedule, so lookups still work.
        for r in o1.requests() {
            assert_eq!(s.get(r.id).unwrap().node, r.node);
        }
        assert!(s.for_object(ObjectId(2)).is_empty());
    }

    #[test]
    fn single_object_pairs_use_the_default_object() {
        let s = RequestSchedule::from_pairs(&[(0, SimTime::ZERO), (1, SimTime::ZERO)]);
        assert!(s.requests().iter().all(|r| r.obj == ObjectId::DEFAULT));
        assert_eq!(s.objects(), vec![ObjectId::DEFAULT]);
        assert_eq!(s.object_id_bound(), 1);
        assert_eq!(ObjectId(5).to_string(), "o5");
    }

    #[test]
    fn root_id_display_and_flags() {
        assert!(RequestId::ROOT.is_root());
        assert!(!RequestId(3).is_root());
        assert_eq!(RequestId::ROOT.to_string(), "r0");
        assert_eq!(RequestId(7).to_string(), "r7");
    }

    #[test]
    fn sequential_detection() {
        let far = RequestSchedule::from_pairs(&[
            (0, SimTime::from_units(0)),
            (1, SimTime::from_units(100)),
            (2, SimTime::from_units(200)),
        ]);
        assert!(far.is_sequential(10.0));
        assert!(!far.is_sequential(150.0));

        let burst = RequestSchedule::from_pairs(&[(0, SimTime::ZERO), (1, SimTime::ZERO)]);
        assert!(!burst.is_sequential(1.0));
    }

    #[test]
    fn shifted_back_compresses_gap() {
        let s = RequestSchedule::from_pairs(&[
            (0, SimTime::from_units(0)),
            (1, SimTime::from_units(100)),
        ]);
        let shifted = s.shifted_back(SimTime::from_units(50), 90.0);
        assert_eq!(shifted.requests()[1].time, SimTime::from_units(10));
        assert_eq!(shifted.requests()[0].time, SimTime::ZERO);
    }

    #[test]
    fn get_by_id() {
        let s = RequestSchedule::from_pairs(&[(4, SimTime::ZERO)]);
        assert_eq!(s.get(RequestId(1)).unwrap().node, 4);
        assert!(s.get(RequestId(9)).is_none());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn root_id_in_schedule_panics() {
        RequestSchedule::from_requests(vec![Request {
            id: RequestId::ROOT,
            node: 0,
            time: SimTime::ZERO,
            obj: ObjectId::DEFAULT,
        }]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ids_panic() {
        RequestSchedule::from_requests(vec![
            Request {
                id: RequestId(1),
                node: 0,
                time: SimTime::ZERO,
                obj: ObjectId::DEFAULT,
            },
            Request {
                id: RequestId(1),
                node: 1,
                time: SimTime::ZERO,
                obj: ObjectId::DEFAULT,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_times_panic() {
        RequestSchedule::from_requests(vec![
            Request {
                id: RequestId(1),
                node: 0,
                time: SimTime::from_units(5),
                obj: ObjectId::DEFAULT,
            },
            Request {
                id: RequestId(2),
                node: 1,
                time: SimTime::ZERO,
                obj: ObjectId::DEFAULT,
            },
        ]);
    }
}
