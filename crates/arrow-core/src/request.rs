//! Queuing requests and request schedules.
//!
//! In the paper's model (Section 3.1) a queuing request is an ordered pair `(v, t)`:
//! the node `v` where it was issued and the time `t` at which it was issued. A problem
//! instance is a finite set `R` of such requests, indexed in order of non-decreasing
//! issue time. The special "virtual" request `r0 = (root, 0)` represents the initial
//! tail of the queue held by the root.

use desim::SimTime;
use netgraph::NodeId;
use serde::{Deserialize, Serialize};

/// Globally unique identifier of a queuing request.
///
/// Id `0` is reserved for the virtual root request `r0`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl RequestId {
    /// The virtual root request `r0 = (root, 0)` that heads every queue.
    pub const ROOT: RequestId = RequestId(0);

    /// True if this is the virtual root request.
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_root() {
            write!(f, "r0")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// A queuing request `(v, t)` with a unique id.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id (never [`RequestId::ROOT`] for real requests).
    pub id: RequestId,
    /// Node at which the request is issued.
    pub node: NodeId,
    /// Time at which the request is issued.
    pub time: SimTime,
}

/// A finite set of queuing requests, stored in non-decreasing time order
/// (the indexing convention of Section 3.1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RequestSchedule {
    requests: Vec<Request>,
    /// Index from request id to position in `requests`, for O(1) lookups on the very
    /// large closed-loop schedules (millions of requests).
    #[serde(skip)]
    index: std::collections::HashMap<RequestId, usize>,
}

impl RequestSchedule {
    fn build(requests: Vec<Request>) -> Self {
        let index = requests
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id, i))
            .collect();
        RequestSchedule { requests, index }
    }

    /// Build a schedule from `(node, time)` pairs; ids are assigned `1..=len` in
    /// non-decreasing time order.
    pub fn from_pairs(pairs: &[(NodeId, SimTime)]) -> Self {
        let mut indexed: Vec<(NodeId, SimTime)> = pairs.to_vec();
        indexed.sort_by_key(|&(node, time)| (time, node));
        let requests = indexed
            .into_iter()
            .enumerate()
            .map(|(i, (node, time))| Request {
                id: RequestId(i as u64 + 1),
                node,
                time,
            })
            .collect();
        RequestSchedule::build(requests)
    }

    /// Build a schedule from explicit requests.
    ///
    /// # Panics
    /// If ids are not unique, any id is the reserved root id, or the requests are not
    /// sorted by non-decreasing time.
    pub fn from_requests(requests: Vec<Request>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for r in &requests {
            assert!(!r.id.is_root(), "request id 0 is reserved for the root");
            assert!(seen.insert(r.id), "duplicate request id {:?}", r.id);
        }
        for w in requests.windows(2) {
            assert!(
                w[0].time <= w[1].time,
                "requests must be sorted by non-decreasing time"
            );
        }
        RequestSchedule::build(requests)
    }

    /// The requests in non-decreasing time order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if there are no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Look up a request by id in O(1).
    pub fn get(&self, id: RequestId) -> Option<&Request> {
        if let Some(&i) = self.index.get(&id) {
            return self.requests.get(i);
        }
        // The index is skipped by serde; fall back to a scan for deserialized values.
        self.requests.iter().find(|r| r.id == id)
    }

    /// Largest issue time in the schedule (`SimTime::ZERO` if empty) — the `t_|R|`
    /// appearing in Lemmas 3.10 and 3.16.
    pub fn last_issue_time(&self) -> SimTime {
        self.requests
            .iter()
            .map(|r| r.time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The distinct nodes that issue at least one request.
    pub fn requesting_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.requests.iter().map(|r| r.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// True if no two requests are ever concurrently active given that a request
    /// issued at time `t` completes within `diameter` time units — the *sequential*
    /// setting analysed by Demmer and Herlihy (Section 1.1).
    pub fn is_sequential(&self, diameter: f64) -> bool {
        self.requests.windows(2).all(|w| {
            let gap = (w[1].time - w[0].time).as_units_f64();
            gap >= diameter
        })
    }

    /// Shift every request issued at or after `threshold` earlier by `delta` units —
    /// the time-compression transformation of Lemma 3.11 (used by the analysis tests).
    pub fn shifted_back(&self, threshold: SimTime, delta: f64) -> RequestSchedule {
        let shifted =
            self.requests
                .iter()
                .map(|r| {
                    if r.time >= threshold {
                        Request {
                            time: SimTime::from_subticks(r.time.subticks().saturating_sub(
                                desim::SimDuration::from_units_f64(delta).subticks(),
                            )),
                            ..*r
                        }
                    } else {
                        *r
                    }
                })
                .collect::<Vec<_>>();
        let mut sorted = shifted;
        sorted.sort_by_key(|r| (r.time, r.id));
        RequestSchedule::build(sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_assigned_in_time_order() {
        let s = RequestSchedule::from_pairs(&[
            (3, SimTime::from_units(5)),
            (1, SimTime::from_units(0)),
            (2, SimTime::from_units(2)),
        ]);
        let nodes: Vec<NodeId> = s.requests().iter().map(|r| r.node).collect();
        assert_eq!(nodes, vec![1, 2, 3]);
        let ids: Vec<u64> = s.requests().iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(s.last_issue_time(), SimTime::from_units(5));
        assert_eq!(s.requesting_nodes(), vec![1, 2, 3]);
    }

    #[test]
    fn root_id_display_and_flags() {
        assert!(RequestId::ROOT.is_root());
        assert!(!RequestId(3).is_root());
        assert_eq!(RequestId::ROOT.to_string(), "r0");
        assert_eq!(RequestId(7).to_string(), "r7");
    }

    #[test]
    fn sequential_detection() {
        let far = RequestSchedule::from_pairs(&[
            (0, SimTime::from_units(0)),
            (1, SimTime::from_units(100)),
            (2, SimTime::from_units(200)),
        ]);
        assert!(far.is_sequential(10.0));
        assert!(!far.is_sequential(150.0));

        let burst = RequestSchedule::from_pairs(&[(0, SimTime::ZERO), (1, SimTime::ZERO)]);
        assert!(!burst.is_sequential(1.0));
    }

    #[test]
    fn shifted_back_compresses_gap() {
        let s = RequestSchedule::from_pairs(&[
            (0, SimTime::from_units(0)),
            (1, SimTime::from_units(100)),
        ]);
        let shifted = s.shifted_back(SimTime::from_units(50), 90.0);
        assert_eq!(shifted.requests()[1].time, SimTime::from_units(10));
        assert_eq!(shifted.requests()[0].time, SimTime::ZERO);
    }

    #[test]
    fn get_by_id() {
        let s = RequestSchedule::from_pairs(&[(4, SimTime::ZERO)]);
        assert_eq!(s.get(RequestId(1)).unwrap().node, 4);
        assert!(s.get(RequestId(9)).is_none());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn root_id_in_schedule_panics() {
        RequestSchedule::from_requests(vec![Request {
            id: RequestId::ROOT,
            node: 0,
            time: SimTime::ZERO,
        }]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ids_panic() {
        RequestSchedule::from_requests(vec![
            Request {
                id: RequestId(1),
                node: 0,
                time: SimTime::ZERO,
            },
            Request {
                id: RequestId(1),
                node: 1,
                time: SimTime::ZERO,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_times_panic() {
        RequestSchedule::from_requests(vec![
            Request {
                id: RequestId(1),
                node: 0,
                time: SimTime::from_units(5),
            },
            Request {
                id: RequestId(2),
                node: 1,
                time: SimTime::ZERO,
            },
        ]);
    }
}
