//! Queuing orders: the output of a distributed queuing protocol.
//!
//! A queuing protocol must arrange all requests into a total order starting at the
//! virtual root request `r0`, and inform the issuer of each request of the identity of
//! its *successor* (Section 2). [`OrderRecord`] captures one such notification (who
//! got queued behind whom, and when the predecessor's node learnt it);
//! [`QueuingOrder`] assembles the records into the total order and validates it.

use crate::request::{ObjectId, RequestId, RequestSchedule};
use desim::{SimDuration, SimTime};
use netgraph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One successor notification: request `successor` was queued immediately behind
/// `predecessor` in the queue of object `obj`, and the node holding `predecessor`
/// learnt this at `informed_at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrderRecord {
    /// The earlier request in the queue (possibly [`RequestId::ROOT`]).
    pub predecessor: RequestId,
    /// The request queued immediately behind `predecessor`.
    pub successor: RequestId,
    /// The object whose queue this notification belongs to (each object has its own
    /// independent total order; [`ObjectId::DEFAULT`] for single-object runs).
    pub obj: ObjectId,
    /// Node at which the notification happened (where `predecessor` lives).
    pub at_node: NodeId,
    /// Time the notification happened — the end point of the latency of `successor`
    /// per Definition 3.2.
    pub informed_at: SimTime,
    /// Recovery epoch the notification happened in (0 in fault-free runs). Under
    /// churn each epoch builds its own chain; see [`validate_churn_records`].
    pub epoch: u64,
}

/// Errors that make a set of order records an invalid queuing order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OrderError {
    /// A request appears as a successor in more than one record.
    DuplicateSuccessor(RequestId),
    /// A request appears as a predecessor in more than one record.
    DuplicatePredecessor(RequestId),
    /// A request from the schedule never appears as a successor (it was never queued).
    MissingRequest(RequestId),
    /// A record references a request id that is not in the schedule.
    UnknownRequest(RequestId),
    /// Following successor links from the root does not visit every request
    /// (the records contain a cycle or a disconnected chain).
    BrokenChain {
        /// How many requests were reachable from the root.
        reached: usize,
        /// How many requests the schedule contains.
        expected: usize,
    },
    /// The records span more than one object: each object has its own independent
    /// queue, so a single [`QueuingOrder`] must be assembled per object (from the
    /// object's records against its [`RequestSchedule::for_object`] sub-schedule).
    MixedObjects(ObjectId, ObjectId),
}

/// A validated total queuing order together with its notification records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueuingOrder {
    /// Request ids in queue order, starting with the request queued directly behind
    /// the root (the root itself is not included).
    order: Vec<RequestId>,
    /// Records indexed by successor id.
    by_successor: HashMap<RequestId, OrderRecord>,
}

impl QueuingOrder {
    /// Assemble and validate a queuing order from notification records.
    ///
    /// Every request in `schedule` must appear exactly once as a successor, each
    /// predecessor (including the root) at most once, and the successor chain starting
    /// from [`RequestId::ROOT`] must visit every request.
    pub fn from_records(
        records: &[OrderRecord],
        schedule: &RequestSchedule,
    ) -> Result<Self, OrderError> {
        let known: std::collections::HashSet<RequestId> =
            schedule.requests().iter().map(|r| r.id).collect();

        if let Some(first) = records.first() {
            if let Some(other) = records.iter().find(|r| r.obj != first.obj) {
                return Err(OrderError::MixedObjects(first.obj, other.obj));
            }
        }

        let mut by_successor: HashMap<RequestId, OrderRecord> = HashMap::new();
        let mut by_predecessor: HashMap<RequestId, OrderRecord> = HashMap::new();
        for rec in records {
            if !known.contains(&rec.successor) {
                return Err(OrderError::UnknownRequest(rec.successor));
            }
            if !rec.predecessor.is_root() && !known.contains(&rec.predecessor) {
                return Err(OrderError::UnknownRequest(rec.predecessor));
            }
            if by_successor.insert(rec.successor, *rec).is_some() {
                return Err(OrderError::DuplicateSuccessor(rec.successor));
            }
            if by_predecessor.insert(rec.predecessor, *rec).is_some() {
                return Err(OrderError::DuplicatePredecessor(rec.predecessor));
            }
        }
        for r in schedule.requests() {
            if !by_successor.contains_key(&r.id) {
                return Err(OrderError::MissingRequest(r.id));
            }
        }

        // Walk the chain from the root.
        let mut order = Vec::with_capacity(schedule.len());
        let mut cur = RequestId::ROOT;
        while let Some(rec) = by_predecessor.get(&cur) {
            order.push(rec.successor);
            cur = rec.successor;
        }
        if order.len() != schedule.len() {
            return Err(OrderError::BrokenChain {
                reached: order.len(),
                expected: schedule.len(),
            });
        }
        Ok(QueuingOrder {
            order,
            by_successor,
        })
    }

    /// The total order (excluding the virtual root request).
    pub fn order(&self) -> &[RequestId] {
        &self.order
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if no requests were queued.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The notification record for a given successor request.
    pub fn record_for(&self, successor: RequestId) -> Option<&OrderRecord> {
        self.by_successor.get(&successor)
    }

    /// The predecessor of a request in the queue.
    pub fn predecessor_of(&self, successor: RequestId) -> Option<RequestId> {
        self.by_successor.get(&successor).map(|r| r.predecessor)
    }

    /// Latency of each request per Definition 3.2: the time from its issue to the
    /// moment its predecessor's node is informed of the succession. Returns pairs
    /// `(request, latency)` in queue order.
    pub fn latencies(&self, schedule: &RequestSchedule) -> Vec<(RequestId, SimDuration)> {
        self.order
            .iter()
            .map(|&id| {
                let rec = self.by_successor[&id];
                let issue = schedule
                    .get(id)
                    .expect("validated order only contains scheduled requests")
                    .time;
                (id, rec.informed_at - issue)
            })
            .collect()
    }

    /// Total latency (Definition 3.3): the sum of individual latencies.
    pub fn total_latency(&self, schedule: &RequestSchedule) -> SimDuration {
        self.latencies(schedule).into_iter().map(|(_, l)| l).sum()
    }
}

/// Assemble and validate the queuing order of every object touched by `schedule`,
/// each against its own sub-schedule ([`RequestSchedule::for_object`]) — the one
/// per-object validation contract shared by the simulator harness
/// ([`crate::run::outcome_from_records`]), the thread runtime's `LiveReport` and
/// the socket runtime's `NetReport`, so the tiers cannot drift on what "a valid
/// run" means. Errors carry the offending object alongside the [`OrderError`].
pub fn per_object_orders(
    records: &[OrderRecord],
    schedule: &RequestSchedule,
) -> Result<Vec<(ObjectId, QueuingOrder)>, (ObjectId, OrderError)> {
    let mut orders = Vec::new();
    for obj in schedule.objects() {
        let sub = schedule.for_object(obj);
        let recs: Vec<OrderRecord> = records.iter().filter(|r| r.obj == obj).copied().collect();
        let order = QueuingOrder::from_records(&recs, &sub).map_err(|e| (obj, e))?;
        orders.push((obj, order));
    }
    Ok(orders)
}

/// An order-validity violation in a run with faults (see [`validate_churn_records`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnOrderError {
    /// A request was queued more than once within a single epoch of one object.
    DuplicateSuccessor {
        /// Object whose queue is inconsistent.
        obj: ObjectId,
        /// Epoch the duplicate appeared in.
        epoch: u64,
        /// The request queued twice.
        req: RequestId,
    },
    /// A request gained two direct successors within a single epoch of one object.
    DuplicatePredecessor {
        /// Object whose queue is inconsistent.
        obj: ObjectId,
        /// Epoch the fork appeared in.
        epoch: u64,
        /// The forked predecessor.
        req: RequestId,
    },
    /// The final epoch's records do not form one chain from the root.
    BrokenFinalChain {
        /// Object whose final chain is broken.
        obj: ObjectId,
        /// The final epoch.
        epoch: u64,
        /// Requests reachable from the root.
        reached: usize,
        /// Records the final epoch contains.
        expected: usize,
    },
}

impl std::fmt::Display for ChurnOrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnOrderError::DuplicateSuccessor { obj, epoch, req } => {
                write!(
                    f,
                    "object {obj}: request {req} queued twice in epoch {epoch}"
                )
            }
            ChurnOrderError::DuplicatePredecessor { obj, epoch, req } => {
                write!(f, "object {obj}: request {req} forked in epoch {epoch}")
            }
            ChurnOrderError::BrokenFinalChain {
                obj,
                epoch,
                reached,
                expected,
            } => write!(
                f,
                "object {obj}: final epoch {epoch} chain reaches {reached} of {expected} records"
            ),
        }
    }
}

/// Validate per-object order records from a run with faults.
///
/// Each recovery epoch of each object builds its own successor chain from the
/// (regenerated) virtual root request, so the fault-free contract — one complete
/// chain per object — splits in two:
///
/// * **Every epoch** must be fork-free: within one `(object, epoch)` group a
///   request is queued at most once and gains at most one direct successor.
///   Abandoned epochs may leave *disconnected* chain segments behind (the fault cut
///   them short); that is legal.
/// * **The final epoch** (`final_epoch`, the one the system converged to after the
///   last fault's detection bump) must additionally form a single connected chain
///   from [`RequestId::ROOT`] covering all of its records — after recovery the
///   directory behaves like a fresh fault-free instance.
pub fn validate_churn_records(
    records: &[OrderRecord],
    final_epoch: u64,
) -> Result<(), ChurnOrderError> {
    let mut groups: HashMap<(ObjectId, u64), Vec<&OrderRecord>> = HashMap::new();
    for rec in records {
        groups.entry((rec.obj, rec.epoch)).or_default().push(rec);
    }
    for (&(obj, epoch), group) in &groups {
        let mut succ_of: HashMap<RequestId, RequestId> = HashMap::new();
        let mut seen_succ: std::collections::HashSet<RequestId> = Default::default();
        for rec in group {
            if !seen_succ.insert(rec.successor) {
                return Err(ChurnOrderError::DuplicateSuccessor {
                    obj,
                    epoch,
                    req: rec.successor,
                });
            }
            if succ_of.insert(rec.predecessor, rec.successor).is_some() {
                return Err(ChurnOrderError::DuplicatePredecessor {
                    obj,
                    epoch,
                    req: rec.predecessor,
                });
            }
        }
        if epoch == final_epoch {
            let mut reached = 0;
            let mut cur = RequestId::ROOT;
            while let Some(&next) = succ_of.get(&cur) {
                reached += 1;
                cur = next;
            }
            if reached != group.len() {
                return Err(ChurnOrderError::BrokenFinalChain {
                    obj,
                    epoch,
                    reached,
                    expected: group.len(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;

    fn schedule3() -> RequestSchedule {
        RequestSchedule::from_pairs(&[
            (0, SimTime::from_units(0)),
            (1, SimTime::from_units(1)),
            (2, SimTime::from_units(2)),
        ])
    }

    fn rec(pred: u64, succ: u64, at: u64) -> OrderRecord {
        OrderRecord {
            predecessor: RequestId(pred),
            successor: RequestId(succ),
            obj: ObjectId::DEFAULT,
            at_node: 0,
            informed_at: SimTime::from_units(at),
            epoch: 0,
        }
    }

    #[test]
    fn valid_chain_builds_order() {
        let records = vec![rec(0, 1, 1), rec(1, 2, 3), rec(2, 3, 5)];
        let order = QueuingOrder::from_records(&records, &schedule3()).unwrap();
        assert_eq!(order.order(), &[RequestId(1), RequestId(2), RequestId(3)]);
        assert_eq!(order.predecessor_of(RequestId(2)), Some(RequestId(1)));
        assert_eq!(order.len(), 3);
        assert!(!order.is_empty());
    }

    #[test]
    fn latencies_and_total_latency() {
        // issue times 0,1,2; informed at 1,3,5 => latencies 1,2,3 => total 6
        let records = vec![rec(0, 1, 1), rec(1, 2, 3), rec(2, 3, 5)];
        let s = schedule3();
        let order = QueuingOrder::from_records(&records, &s).unwrap();
        let lats = order.latencies(&s);
        let units: Vec<f64> = lats.iter().map(|(_, l)| l.as_units_f64()).collect();
        assert_eq!(units, vec![1.0, 2.0, 3.0]);
        assert_eq!(order.total_latency(&s), SimDuration::from_units(6));
    }

    #[test]
    fn missing_request_detected() {
        let records = vec![rec(0, 1, 1), rec(1, 2, 3)];
        let err = QueuingOrder::from_records(&records, &schedule3()).unwrap_err();
        assert_eq!(err, OrderError::MissingRequest(RequestId(3)));
    }

    #[test]
    fn duplicate_successor_detected() {
        let records = vec![rec(0, 1, 1), rec(1, 1, 2), rec(1, 2, 3), rec(2, 3, 4)];
        let err = QueuingOrder::from_records(&records, &schedule3()).unwrap_err();
        assert_eq!(err, OrderError::DuplicateSuccessor(RequestId(1)));
    }

    #[test]
    fn forked_predecessor_detected() {
        let records = vec![rec(0, 1, 1), rec(1, 2, 3), rec(1, 3, 4)];
        let err = QueuingOrder::from_records(&records, &schedule3()).unwrap_err();
        assert_eq!(err, OrderError::DuplicatePredecessor(RequestId(1)));
    }

    #[test]
    fn cycle_is_a_broken_chain() {
        // 1 <- 2, 2 <- 3, 3 <- 1 : no link from the root at all.
        let records = vec![rec(1, 2, 1), rec(2, 3, 2), rec(3, 1, 3)];
        let err = QueuingOrder::from_records(&records, &schedule3()).unwrap_err();
        assert_eq!(
            err,
            OrderError::BrokenChain {
                reached: 0,
                expected: 3
            }
        );
    }

    #[test]
    fn unknown_request_detected() {
        let records = vec![rec(0, 9, 1)];
        let err = QueuingOrder::from_records(&records, &schedule3()).unwrap_err();
        assert_eq!(err, OrderError::UnknownRequest(RequestId(9)));
    }

    fn erec(epoch: u64, pred: u64, succ: u64) -> OrderRecord {
        OrderRecord {
            epoch,
            ..rec(pred, succ, 1)
        }
    }

    #[test]
    fn churn_records_allow_disconnected_segments_in_abandoned_epochs() {
        // Epoch 0: segment 5 <- 6 not anchored at the root (the fault cut the run
        // short). Epoch 1 (final): complete chain 0 <- 1 <- 2.
        let records = vec![erec(0, 5, 6), erec(1, 0, 1), erec(1, 1, 2)];
        validate_churn_records(&records, 1).expect("legal churn history");
    }

    #[test]
    fn churn_records_reject_forks_in_any_epoch() {
        let dup_succ = vec![erec(0, 1, 2), erec(0, 3, 2)];
        assert!(matches!(
            validate_churn_records(&dup_succ, 1),
            Err(ChurnOrderError::DuplicateSuccessor { .. })
        ));
        let dup_pred = vec![erec(0, 1, 2), erec(0, 1, 3)];
        assert!(matches!(
            validate_churn_records(&dup_pred, 1),
            Err(ChurnOrderError::DuplicatePredecessor { .. })
        ));
    }

    #[test]
    fn churn_records_require_a_complete_final_chain() {
        // Final epoch has a segment not anchored at the root.
        let records = vec![erec(2, 0, 1), erec(2, 7, 8)];
        let err = validate_churn_records(&records, 2).unwrap_err();
        assert!(matches!(
            err,
            ChurnOrderError::BrokenFinalChain {
                reached: 1,
                expected: 2,
                ..
            }
        ));
        assert!(err.to_string().contains("final epoch"));
        // The same records are legal when epoch 2 is not final.
        validate_churn_records(&records, 3).expect("non-final epochs may fragment");
    }

    #[test]
    fn mixed_objects_detected() {
        let mut records = vec![rec(0, 1, 1), rec(1, 2, 3), rec(2, 3, 5)];
        records[1].obj = ObjectId(4);
        let err = QueuingOrder::from_records(&records, &schedule3()).unwrap_err();
        assert_eq!(
            err,
            OrderError::MixedObjects(ObjectId::DEFAULT, ObjectId(4))
        );
    }
}
