//! Stretch of a spanning tree.
//!
//! Definition 3.1 of the paper: given a graph `G` and spanning tree `T`, the stretch is
//! `s := max_{u,v} d_T(u, v) / d_G(u, v)`. The competitive ratio of the arrow protocol
//! is `O(s · log D)`, so every experiment needs `s` (and usually also the average
//! stretch, which governs expected behaviour under uniformly random request origins).

use crate::graph::{Graph, NodeId};
use crate::shortest::DistanceMatrix;
use crate::tree::RootedTree;
use serde::{Deserialize, Serialize};

/// Stretch statistics of a spanning tree relative to its host graph.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StretchReport {
    /// Maximum stretch over all node pairs (Definition 3.1). At least 1.
    pub max_stretch: f64,
    /// Average stretch over all unordered node pairs.
    pub avg_stretch: f64,
    /// A pair attaining the maximum stretch.
    pub worst_pair: (NodeId, NodeId),
    /// Weighted diameter of the tree (the `D` in the bounds).
    pub tree_diameter: f64,
    /// Weighted diameter of the graph.
    pub graph_diameter: f64,
}

impl StretchReport {
    /// The paper's upper-bound expression `s · (3 ⌈log2(3D)⌉ + 1)` from the proof of
    /// Theorem 3.19 — the concrete constant the measured competitive ratio is compared
    /// against in the experiments (using max(D, 2) to keep the log positive on tiny
    /// trees).
    pub fn upper_bound_constant(&self) -> f64 {
        let d = self.tree_diameter.max(2.0);
        self.max_stretch * (3.0 * (3.0 * d).log2().ceil() + 1.0)
    }
}

/// Compute stretch statistics of `tree` as a spanning tree of `graph`.
///
/// # Panics
/// If node counts differ or the graph is disconnected.
pub fn stretch(graph: &Graph, tree: &RootedTree) -> StretchReport {
    stretch_with_distances(graph, tree, &DistanceMatrix::new(graph))
}

/// [`stretch`] with a precomputed all-pairs distance matrix of `graph`, so callers
/// that already hold one (e.g. a sweep sharing an `Arc<DistanceMatrix>` per
/// topology) do not pay for a second all-pairs computation.
///
/// # Panics
/// If node counts differ (graph vs. tree vs. matrix) or the graph is disconnected.
pub fn stretch_with_distances(
    graph: &Graph,
    tree: &RootedTree,
    dm: &DistanceMatrix,
) -> StretchReport {
    assert_eq!(
        graph.node_count(),
        tree.node_count(),
        "graph and tree must have the same node set"
    );
    assert_eq!(
        graph.node_count(),
        dm.node_count(),
        "distance matrix does not match the graph"
    );
    let n = graph.node_count();
    assert!(dm.is_connected(), "graph must be connected");

    let mut max_stretch: f64 = 1.0;
    let mut worst_pair = (0, 0);
    let mut sum_stretch = 0.0;
    let mut pairs = 0u64;
    for u in 0..n {
        for v in (u + 1)..n {
            let dg = dm.dist(u, v);
            let dt = tree.distance(u, v);
            debug_assert!(
                dt >= dg - 1e-9,
                "tree distance cannot be shorter than graph distance"
            );
            let ratio = if dg > 0.0 { dt / dg } else { 1.0 };
            if ratio > max_stretch {
                max_stretch = ratio;
                worst_pair = (u, v);
            }
            sum_stretch += ratio;
            pairs += 1;
        }
    }
    let avg_stretch = if pairs > 0 {
        sum_stretch / pairs as f64
    } else {
        1.0
    };
    StretchReport {
        max_stretch,
        avg_stretch,
        worst_pair,
        tree_diameter: tree.diameter(),
        graph_diameter: dm.diameter(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::spanning::{build_spanning_tree, SpanningTreeKind};

    #[test]
    fn spanning_tree_of_a_tree_has_stretch_one() {
        let g = generators::balanced_binary_tree(15);
        let t = RootedTree::from_tree_graph(&g, 0);
        let r = stretch(&g, &t);
        assert_eq!(r.max_stretch, 1.0);
        assert_eq!(r.avg_stretch, 1.0);
        assert_eq!(r.tree_diameter, r.graph_diameter);
    }

    #[test]
    fn cycle_with_path_tree_has_stretch_n_minus_one() {
        // Removing one edge of an n-cycle gives a path; the endpoints of the removed
        // edge are at graph distance 1 but tree distance n-1.
        let n = 10;
        let g = generators::cycle(n);
        let t = build_spanning_tree(&g, 0, SpanningTreeKind::ShortestPath);
        let r = stretch(&g, &t);
        assert!(r.max_stretch >= (n - 1) as f64 - 1e-9);
        assert!(r.avg_stretch >= 1.0);
        assert!(r.avg_stretch <= r.max_stretch);
    }

    #[test]
    fn star_tree_on_complete_graph_has_stretch_two() {
        let g = generators::complete(12, 1.0);
        let t = build_spanning_tree(&g, 0, SpanningTreeKind::Star);
        let r = stretch(&g, &t);
        assert_eq!(r.max_stretch, 2.0);
        assert_eq!(r.tree_diameter, 2.0);
        assert_eq!(r.graph_diameter, 1.0);
    }

    #[test]
    fn balanced_binary_tree_on_complete_graph_stretch_matches_depth() {
        let g = generators::complete(15, 1.0);
        let t = build_spanning_tree(&g, 0, SpanningTreeKind::BalancedBinary);
        let r = stretch(&g, &t);
        // Tree diameter is 2*depth = 6, graph diameter 1 => stretch 6.
        assert_eq!(r.max_stretch, 6.0);
        assert_eq!(r.tree_diameter, 6.0);
    }

    #[test]
    fn upper_bound_constant_is_positive_and_grows_with_stretch() {
        let g = generators::complete(15, 1.0);
        let star = stretch(&g, &build_spanning_tree(&g, 0, SpanningTreeKind::Star));
        let bin = stretch(
            &g,
            &build_spanning_tree(&g, 0, SpanningTreeKind::BalancedBinary),
        );
        assert!(star.upper_bound_constant() > 0.0);
        assert!(bin.upper_bound_constant() > star.upper_bound_constant());
    }

    #[test]
    fn worst_pair_attains_max_stretch() {
        let g = generators::cycle(8);
        let t = build_spanning_tree(&g, 0, SpanningTreeKind::ShortestPath);
        let r = stretch(&g, &t);
        let dm = DistanceMatrix::new(&g);
        let (u, v) = r.worst_pair;
        let attained = t.distance(u, v) / dm.dist(u, v);
        assert!((attained - r.max_stretch).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "same node set")]
    fn mismatched_sizes_panic() {
        let g = generators::path(5);
        let t = RootedTree::from_tree_graph(&generators::path(4), 0);
        stretch(&g, &t);
    }
}
