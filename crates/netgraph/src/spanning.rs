//! Spanning-tree construction.
//!
//! The arrow protocol runs on a *pre-selected* spanning tree whose choice determines
//! its competitive ratio (the stretch `s` and diameter `D` both appear in the bound).
//! Section 1.1 of the paper surveys the options: Demmer–Herlihy suggest a minimum
//! spanning tree, Peleg–Reshef a minimum communication spanning tree, and the paper's
//! own experiment uses a balanced binary tree over a complete graph. This module
//! provides all of those constructors so the benchmark harness can ablate the choice.

use crate::graph::{Graph, NodeId};
use crate::shortest::{shortest_paths, DistanceMatrix};
use crate::tree::RootedTree;
use serde::{Deserialize, Serialize};

/// Which spanning tree to build; used by harness configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanningTreeKind {
    /// Breadth-first / shortest-path tree from the root.
    ShortestPath,
    /// Kruskal minimum spanning tree (by edge weight), rooted at the given root.
    MinimumWeight,
    /// A star centred at the root (only valid when the root is adjacent to everyone,
    /// e.g. on a complete graph) — the "centralized-like" extreme.
    Star,
    /// A balanced binary tree in node-id heap order (ignores graph edges; only valid
    /// on a complete graph) — the tree used in the paper's experiment.
    BalancedBinary,
    /// Greedy approximation of a minimum *communication* spanning tree: the
    /// shortest-path tree rooted at the node minimising total distance to all others
    /// (the 1-median), per Peleg–Reshef's recommendation for the sequential case.
    MinimumCommunication,
}

/// Build the requested spanning tree of `graph`, rooted at `root`.
///
/// # Panics
/// If the graph is disconnected, or the kind's structural requirements are not met
/// (e.g. `Star` when the root is not adjacent to every node).
pub fn build_spanning_tree(graph: &Graph, root: NodeId, kind: SpanningTreeKind) -> RootedTree {
    assert!(graph.is_connected(), "graph must be connected");
    assert!(root < graph.node_count(), "root out of range");
    match kind {
        SpanningTreeKind::ShortestPath => shortest_path_tree(graph, root),
        SpanningTreeKind::MinimumWeight => minimum_spanning_tree(graph, root),
        SpanningTreeKind::Star => star_tree(graph, root),
        SpanningTreeKind::BalancedBinary => balanced_binary_spanning_tree(graph, root),
        SpanningTreeKind::MinimumCommunication => minimum_communication_tree(graph),
    }
}

/// Shortest-path (BFS/Dijkstra) tree rooted at `root`.
pub fn shortest_path_tree(graph: &Graph, root: NodeId) -> RootedTree {
    let sp = shortest_paths(graph, root);
    let parents: Vec<Option<(NodeId, f64)>> = (0..graph.node_count())
        .map(|v| {
            sp.parent[v].map(|p| {
                let w = graph
                    .edge_weight(v, p)
                    .expect("shortest-path parent must be adjacent");
                (p, w)
            })
        })
        .collect();
    RootedTree::from_parents(&parents)
}

/// Kruskal minimum spanning tree (total edge weight), rooted at `root`.
pub fn minimum_spanning_tree(graph: &Graph, root: NodeId) -> RootedTree {
    let n = graph.node_count();
    let mut edges: Vec<(f64, NodeId, NodeId)> =
        graph.edges().iter().map(|e| (e.weight, e.u, e.v)).collect();
    // Deterministic order: by weight, then endpoints.
    edges.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap()
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    let mut dsu = DisjointSet::new(n);
    let mut tree = Graph::new(n);
    for (w, u, v) in edges {
        if dsu.union(u, v) {
            tree.add_weighted_edge(u, v, w);
        }
    }
    RootedTree::from_tree_graph(&tree, root)
}

/// A star spanning tree centred at `root` (requires the root to be adjacent to every
/// other node, e.g. on a complete graph).
pub fn star_tree(graph: &Graph, root: NodeId) -> RootedTree {
    let n = graph.node_count();
    let parents: Vec<Option<(NodeId, f64)>> = (0..n)
        .map(|v| {
            if v == root {
                None
            } else {
                let w = graph.edge_weight(v, root).unwrap_or_else(|| {
                    panic!("star tree requires root {root} adjacent to node {v}")
                });
                Some((root, w))
            }
        })
        .collect();
    RootedTree::from_parents(&parents)
}

/// The balanced binary spanning tree used in the paper's experiment: node `i`'s parent
/// is `(i-1)/2` after relabelling so that `root` gets label 0. Every tree edge must be
/// a graph edge (true on a complete graph).
pub fn balanced_binary_spanning_tree(graph: &Graph, root: NodeId) -> RootedTree {
    let n = graph.node_count();
    // Relabel: position 0 is the root, the rest keep their relative order.
    let mut order: Vec<NodeId> = (0..n).collect();
    order.retain(|&v| v != root);
    order.insert(0, root);
    // order[pos] = node at heap position pos; parent of pos is (pos-1)/2.
    let mut parents: Vec<Option<(NodeId, f64)>> = vec![None; n];
    for pos in 1..n {
        let node = order[pos];
        let parent = order[(pos - 1) / 2];
        let w = graph.edge_weight(node, parent).unwrap_or_else(|| {
            panic!("balanced binary tree requires edge ({node},{parent}) in the graph")
        });
        parents[node] = Some((parent, w));
    }
    RootedTree::from_parents(&parents)
}

/// Greedy minimum *communication* spanning tree: the shortest-path tree rooted at the
/// 1-median of the graph (the node minimising the sum of distances to all others).
pub fn minimum_communication_tree(graph: &Graph) -> RootedTree {
    let dm = DistanceMatrix::new(graph);
    let n = graph.node_count();
    let median = (0..n)
        .min_by(|&a, &b| {
            let sa: f64 = (0..n).map(|v| dm.dist(a, v)).sum();
            let sb: f64 = (0..n).map(|v| dm.dist(b, v)).sum();
            sa.partial_cmp(&sb).unwrap()
        })
        .expect("graph must be non-empty");
    shortest_path_tree(graph, median)
}

/// Union-find with path compression and union by size.
#[derive(Debug, Clone)]
pub struct DisjointSet {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl DisjointSet {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Merge the sets of `a` and `b`. Returns `true` if they were different sets.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn shortest_path_tree_preserves_root_distances() {
        let g = generators::grid(4, 4);
        let t = shortest_path_tree(&g, 0);
        let sp = shortest_paths(&g, 0);
        for v in 0..16 {
            assert_eq!(t.root_distance(v), sp.dist[v], "node {v}");
        }
    }

    #[test]
    fn mst_total_weight_is_minimal_on_small_example() {
        //  weights chosen so the MST is {0-1 (1), 1-2 (2), 2-3 (1)} = 4, not the direct 0-3 (10)
        let g = Graph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (0, 3, 10.0),
                (0, 2, 5.0),
            ],
        );
        let t = minimum_spanning_tree(&g, 0);
        let total: f64 = (0..4).map(|v| t.parent_edge_weight(v)).sum();
        assert_eq!(total, 4.0);
    }

    #[test]
    fn mst_of_unweighted_graph_is_a_spanning_tree() {
        let g = generators::erdos_renyi_connected(25, 0.2, 3);
        let t = minimum_spanning_tree(&g, 0);
        assert_eq!(t.node_count(), 25);
        assert!(t.to_graph().is_tree());
        // All tree edges are graph edges.
        for v in 0..25 {
            if let Some(p) = t.parent(v) {
                assert!(g.has_edge(v, p));
            }
        }
    }

    #[test]
    fn star_tree_on_complete_graph() {
        let g = generators::complete(8, 1.0);
        let t = star_tree(&g, 3);
        assert_eq!(t.root(), 3);
        for v in 0..8 {
            if v != 3 {
                assert_eq!(t.parent(v), Some(3));
            }
        }
        assert_eq!(t.hop_diameter(), 2);
    }

    #[test]
    fn balanced_binary_tree_on_complete_graph_has_log_depth() {
        let g = generators::complete(15, 1.0);
        let t = balanced_binary_spanning_tree(&g, 4);
        assert_eq!(t.root(), 4);
        assert_eq!(t.node_count(), 15);
        // depth of a 15-node complete binary tree is 3
        let max_depth = (0..15).map(|v| t.depth(v)).max().unwrap();
        assert_eq!(max_depth, 3);
    }

    #[test]
    fn minimum_communication_tree_picks_central_root_on_path() {
        let g = generators::path(9);
        let t = minimum_communication_tree(&g);
        assert_eq!(t.root(), 4);
    }

    #[test]
    fn build_spanning_tree_dispatches() {
        let g = generators::complete(10, 1.0);
        for kind in [
            SpanningTreeKind::ShortestPath,
            SpanningTreeKind::MinimumWeight,
            SpanningTreeKind::Star,
            SpanningTreeKind::BalancedBinary,
            SpanningTreeKind::MinimumCommunication,
        ] {
            let t = build_spanning_tree(&g, 0, kind);
            assert_eq!(t.node_count(), 10);
            assert!(t.to_graph().is_tree(), "{kind:?}");
        }
    }

    #[test]
    fn disjoint_set_union_find() {
        let mut d = DisjointSet::new(5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 2));
        assert!(d.connected(0, 2));
        assert!(!d.connected(0, 4));
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn star_tree_requires_adjacency() {
        let g = generators::path(5);
        star_tree(&g, 0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_panics() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        build_spanning_tree(&g, 0, SpanningTreeKind::ShortestPath);
    }
}
