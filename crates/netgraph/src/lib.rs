//! # netgraph — graphs, spanning trees and tree metrics
//!
//! The network-topology substrate for the reproduction of *"Dynamic Analysis of the
//! Arrow Distributed Protocol"*. The arrow protocol runs on a pre-selected spanning
//! tree `T` of the communication graph `G`; its competitive ratio is `O(s · log D)`
//! where `s` is the stretch of `T` (Definition 3.1) and `D` its diameter. This crate
//! provides:
//!
//! * [`graph::Graph`] — weighted undirected graphs;
//! * [`generators`] — the topology families used in the experiments (complete graph,
//!   path, grid, torus, hypercube, random geometric, Erdős–Rényi, balanced binary
//!   tree, …);
//! * [`shortest`] — BFS/Dijkstra, all-pairs distances, diameter/radius;
//! * [`tree::RootedTree`] — rooted spanning trees with LCA, tree distances, tree paths
//!   and next-hop routing;
//! * [`spanning`] — spanning-tree constructors (shortest-path tree, MST, star,
//!   balanced binary, minimum-communication heuristic);
//! * [`mod@stretch`] — stretch computation (Definition 3.1) and the paper's bound constant;
//! * [`metric`] — finite metric spaces and a metric-axiom checker used by tests.
//!
//! ## Example: the experiment topology of Section 5
//!
//! ```
//! use netgraph::generators::complete;
//! use netgraph::spanning::{build_spanning_tree, SpanningTreeKind};
//! use netgraph::stretch::stretch;
//!
//! // 16 processors, uniform latency, balanced binary spanning tree.
//! let g = complete(16, 1.0);
//! let t = build_spanning_tree(&g, 0, SpanningTreeKind::BalancedBinary);
//! let report = stretch(&g, &t);
//! assert_eq!(report.graph_diameter, 1.0);
//! assert!(report.max_stretch >= 2.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod generators;
pub mod graph;
pub mod metric;
pub mod shortest;
pub mod spanning;
pub mod stretch;
pub mod tree;

pub use graph::{Edge, Graph, NodeId};
pub use metric::{check_metric_axioms, ExplicitMetric, FiniteMetric, GraphMetric, TreeMetric};
pub use shortest::{bfs, shortest_paths, DistanceMatrix, ShortestPaths};
pub use spanning::{build_spanning_tree, DisjointSet, SpanningTreeKind};
pub use stretch::{stretch, stretch_with_distances, StretchReport};
pub use tree::RootedTree;
