//! Weighted undirected graphs.
//!
//! The paper models the network as a graph `G = (V, E)` of processors and
//! point-to-point FIFO links, and runs the arrow protocol on a pre-selected spanning
//! tree `T` of `G`. [`Graph`] is the shared representation used by the topology
//! generators, the spanning-tree constructors, the distance/stretch computations and
//! the protocol harness.
//!
//! Internally the graph keeps two adjacency representations: per-node `Vec`s used
//! while the graph is being built, and a CSR (compressed sparse row) view — one flat
//! `Vec<(NodeId, f64)>` plus an offsets array — frozen lazily on the first
//! [`Graph::neighbors`] query. All hot read paths (BFS/Dijkstra, protocol routing,
//! stretch computation) iterate the CSR view, which is contiguous in memory and
//! avoids a pointer chase per node. Any mutation invalidates the frozen view.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// Node identifier — an index in `0..graph.node_count()`.
pub type NodeId = usize;

/// An undirected edge with a positive weight (latency in time units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// Other endpoint.
    pub v: NodeId,
    /// Edge weight (latency). Must be positive.
    pub weight: f64,
}

/// Frozen compressed-sparse-row adjacency: `flat[offsets[u]..offsets[u + 1]]` is the
/// neighbor list of `u`.
#[derive(Debug, Clone)]
struct Csr {
    offsets: Vec<usize>,
    flat: Vec<(NodeId, f64)>,
}

impl Csr {
    fn build(adjacency: &[Vec<(NodeId, f64)>]) -> Self {
        let mut offsets = Vec::with_capacity(adjacency.len() + 1);
        let total: usize = adjacency.iter().map(Vec::len).sum();
        let mut flat = Vec::with_capacity(total);
        offsets.push(0);
        for list in adjacency {
            flat.extend_from_slice(list);
            offsets.push(flat.len());
        }
        Csr { offsets, flat }
    }
}

/// A weighted undirected graph stored as adjacency lists with a lazily frozen CSR
/// view for queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    /// adjacency[u] = list of (neighbor, weight); the build-time representation.
    adjacency: Vec<Vec<(NodeId, f64)>>,
    edges: Vec<Edge>,
    /// True while every inserted edge has weight exactly 1 (kept incrementally so
    /// the BFS fast path can be selected in O(1)).
    unit_weights: bool,
    /// CSR view, frozen on first neighbor query and reset by mutation.
    #[serde(skip)]
    csr: OnceLock<Csr>,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0)
    }
}

impl Graph {
    /// Create a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adjacency: vec![Vec::new(); n],
            edges: Vec::new(),
            unit_weights: true,
            csr: OnceLock::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterate over the nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n
    }

    /// Add an undirected edge `{u, v}` with unit weight.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_weighted_edge(u, v, 1.0);
    }

    /// Add an undirected edge `{u, v}` with the given positive weight.
    ///
    /// # Panics
    /// If `u == v`, if either endpoint is out of range, if the weight is not positive
    /// and finite, or if the edge already exists.
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, weight: f64) {
        assert!(
            !self.has_edge(u, v),
            "edge ({u},{v}) already present; parallel edges are not allowed"
        );
        self.add_weighted_edge_unchecked(u, v, weight);
    }

    /// Add an undirected edge `{u, v}` without the O(deg) duplicate-edge scan.
    ///
    /// Intended for generators whose construction is duplicate-free by design (grid,
    /// complete graph, hypercube, Prüfer decoding, …), where the per-edge scan turns
    /// an `O(m)` build into `O(n·m)`. Duplicates are still caught in debug builds.
    ///
    /// # Panics
    /// If `u == v`, either endpoint is out of range, or the weight is not positive
    /// and finite. In debug builds, also if the edge already exists.
    pub fn add_weighted_edge_unchecked(&mut self, u: NodeId, v: NodeId, weight: f64) {
        assert!(u != v, "self-loops are not allowed ({u})");
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        assert!(
            weight > 0.0 && weight.is_finite(),
            "edge weight must be positive and finite, got {weight}"
        );
        debug_assert!(
            !self.has_edge(u, v),
            "edge ({u},{v}) already present; parallel edges are not allowed"
        );
        self.adjacency[u].push((v, weight));
        self.adjacency[v].push((u, weight));
        self.edges.push(Edge { u, v, weight });
        if weight != 1.0 {
            self.unit_weights = false;
        }
        self.csr.take();
    }

    /// Build a graph over `n` nodes from an edge list known to be duplicate-free
    /// (batch variant of [`Graph::add_weighted_edge_unchecked`] that sizes the
    /// adjacency lists exactly once).
    pub fn from_edges_unchecked(n: usize, edges: &[(NodeId, NodeId, f64)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(u, v, _) in edges {
            assert!(u != v, "self-loops are not allowed ({u})");
            assert!(u < n && v < n, "edge ({u},{v}) out of range");
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut g = Graph {
            n,
            adjacency: degree.into_iter().map(Vec::with_capacity).collect(),
            edges: Vec::with_capacity(edges.len()),
            unit_weights: true,
            csr: OnceLock::new(),
        };
        for &(u, v, w) in edges {
            assert!(
                w > 0.0 && w.is_finite(),
                "edge weight must be positive and finite, got {w}"
            );
            debug_assert!(!g.has_edge(u, v), "duplicate edge ({u},{v})");
            g.adjacency[u].push((v, w));
            g.adjacency[v].push((u, w));
            g.edges.push(Edge { u, v, weight: w });
            if w != 1.0 {
                g.unit_weights = false;
            }
        }
        g
    }

    /// True if the edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.n && self.adjacency[u].iter().any(|&(w, _)| w == v)
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if u >= self.n {
            return None;
        }
        self.adjacency[u]
            .iter()
            .find(|&&(w, _)| w == v)
            .map(|&(_, weight)| weight)
    }

    /// The frozen CSR view, built on first use.
    #[inline]
    fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| Csr::build(&self.adjacency))
    }

    /// Neighbors of `u` with edge weights.
    ///
    /// Served from the CSR view (frozen on first call); a contiguous slice with no
    /// per-node indirection.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, f64)] {
        debug_assert!(u < self.n, "node {u} out of range");
        let csr = self.csr();
        let lo = csr.offsets[u];
        let hi = csr.offsets[u + 1];
        debug_assert!(lo <= hi && hi <= csr.flat.len(), "corrupt CSR offsets");
        &csr.flat[lo..hi]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u].len()
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// True if every edge has weight exactly 1 (O(1): tracked incrementally).
    pub fn is_unweighted(&self) -> bool {
        self.unit_weights
    }

    /// True if the graph is connected (the empty graph and 1-node graph are connected).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n
    }

    /// True if the graph is a tree: connected with exactly `n - 1` edges.
    pub fn is_tree(&self) -> bool {
        self.n > 0 && self.edge_count() == self.n - 1 && self.is_connected()
    }

    /// Build a graph from an explicit edge list over `n` nodes.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId, f64)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v, w) in edges {
            g.add_weighted_edge(u, v, w);
        }
        g
    }

    /// The set of nodes incident to at least one edge.
    pub fn non_isolated_nodes(&self) -> BTreeSet<NodeId> {
        self.edges.iter().flat_map(|e| [e.u, e.v]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_node_graphs_are_connected() {
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(!Graph::new(2).is_connected());
    }

    #[test]
    fn add_edge_updates_adjacency_both_ways() {
        let mut g = Graph::new(3);
        g.add_weighted_edge(0, 2, 2.5);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_weight(2, 0), Some(2.5));
        assert_eq!(g.edge_weight(0, 1), None);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.max_degree(), 1);
        assert!(!g.is_unweighted());
    }

    #[test]
    fn path_graph_is_a_tree() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert!(g.is_tree());
        assert!(g.is_connected());
        assert!(g.is_unweighted());
        assert_eq!(g.total_weight(), 3.0);
    }

    #[test]
    fn cycle_is_not_a_tree() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        assert!(!g.is_tree());
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(!g.is_connected());
        assert!(!g.is_tree());
        assert_eq!(g.non_isolated_nodes().len(), 4);
    }

    #[test]
    fn csr_view_matches_adjacency_and_survives_mutation() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        // Freeze the CSR by querying, then mutate and query again.
        assert_eq!(g.neighbors(1), &[(0, 1.0), (2, 1.0)]);
        g.add_edge(1, 3);
        assert_eq!(g.neighbors(1), &[(0, 1.0), (2, 1.0), (3, 1.0)]);
        assert_eq!(g.neighbors(3), &[(1, 1.0)]);
        assert!(g.neighbors(0).iter().any(|&(v, _)| v == 1));
    }

    #[test]
    fn unchecked_batch_constructor_matches_checked_one() {
        let edges = [(0usize, 1usize, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 4.0)];
        let checked = Graph::from_edges(4, &edges);
        let unchecked = Graph::from_edges_unchecked(4, &edges);
        assert_eq!(checked.edge_count(), unchecked.edge_count());
        assert_eq!(checked.is_unweighted(), unchecked.is_unweighted());
        for u in 0..4 {
            assert_eq!(checked.neighbors(u), unchecked.neighbors(u));
        }
    }

    #[test]
    fn unit_weight_flag_tracks_insertions() {
        let mut g = Graph::new(3);
        assert!(g.is_unweighted());
        g.add_edge(0, 1);
        assert!(g.is_unweighted());
        g.add_weighted_edge(1, 2, 0.5);
        assert!(!g.is_unweighted());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Graph::new(2).add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::new(2).add_edge(0, 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weight_panics() {
        Graph::new(2).add_weighted_edge(0, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn parallel_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }
}
