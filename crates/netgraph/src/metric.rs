//! Finite metric spaces.
//!
//! The analysis juggles several distance functions — the graph metric `d_G`, the tree
//! metric `d_T`, and the space–time Manhattan metric `c_M` built on top of `d_T`
//! (Definition 3.14). This module provides a small trait for finite (pseudo)metrics,
//! concrete implementations backed by a [`DistanceMatrix`] or a [`RootedTree`], and a
//! checker for the metric axioms used by the property tests.

use crate::graph::NodeId;
use crate::shortest::DistanceMatrix;
use crate::tree::RootedTree;

/// A symmetric distance function on the points `0..len()`.
pub trait FiniteMetric {
    /// Number of points.
    fn len(&self) -> usize;
    /// Distance between points `a` and `b`.
    fn dist(&self, a: usize, b: usize) -> f64;
    /// True if there are no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The shortest-path metric of a graph.
#[derive(Debug, Clone)]
pub struct GraphMetric {
    dm: DistanceMatrix,
}

impl GraphMetric {
    /// Wrap a precomputed distance matrix.
    pub fn new(dm: DistanceMatrix) -> Self {
        GraphMetric { dm }
    }
}

impl FiniteMetric for GraphMetric {
    fn len(&self) -> usize {
        self.dm.node_count()
    }
    fn dist(&self, a: usize, b: usize) -> f64 {
        self.dm.dist(a, b)
    }
}

/// The path metric of a (rooted) tree.
#[derive(Debug, Clone)]
pub struct TreeMetric<'a> {
    tree: &'a RootedTree,
}

impl<'a> TreeMetric<'a> {
    /// Wrap a rooted tree.
    pub fn new(tree: &'a RootedTree) -> Self {
        TreeMetric { tree }
    }
}

impl FiniteMetric for TreeMetric<'_> {
    fn len(&self) -> usize {
        self.tree.node_count()
    }
    fn dist(&self, a: usize, b: usize) -> f64 {
        self.tree.distance(a, b)
    }
}

/// An explicit metric given by a dense symmetric matrix (row-major, `n*n` entries).
#[derive(Debug, Clone)]
pub struct ExplicitMetric {
    n: usize,
    d: Vec<f64>,
}

impl ExplicitMetric {
    /// Build from a closure evaluated on every ordered pair.
    pub fn from_fn(n: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut d = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                d[a * n + b] = f(a, b);
            }
        }
        ExplicitMetric { n, d }
    }
}

impl FiniteMetric for ExplicitMetric {
    fn len(&self) -> usize {
        self.n
    }
    fn dist(&self, a: usize, b: usize) -> f64 {
        self.d[a * self.n + b]
    }
}

/// Ways a candidate distance function can fail to be a metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricViolation {
    /// `d(a, a) != 0`.
    NonZeroSelfDistance(NodeId),
    /// `d(a, b) < 0`.
    Negative(NodeId, NodeId),
    /// `d(a, b) != d(b, a)`.
    Asymmetric(NodeId, NodeId),
    /// `d(a, c) > d(a, b) + d(b, c)` beyond tolerance.
    TriangleInequality(NodeId, NodeId, NodeId),
}

/// Check the (pseudo)metric axioms exhaustively. `O(n^3)` — intended for tests on
/// small spaces. Returns all violations found (empty means the axioms hold).
pub fn check_metric_axioms<M: FiniteMetric>(m: &M, tolerance: f64) -> Vec<MetricViolation> {
    let n = m.len();
    let mut violations = Vec::new();
    for a in 0..n {
        if m.dist(a, a).abs() > tolerance {
            violations.push(MetricViolation::NonZeroSelfDistance(a));
        }
        for b in 0..n {
            if m.dist(a, b) < -tolerance {
                violations.push(MetricViolation::Negative(a, b));
            }
            if (m.dist(a, b) - m.dist(b, a)).abs() > tolerance {
                violations.push(MetricViolation::Asymmetric(a, b));
            }
        }
    }
    for a in 0..n {
        for b in 0..n {
            for c in 0..n {
                if m.dist(a, c) > m.dist(a, b) + m.dist(b, c) + tolerance {
                    violations.push(MetricViolation::TriangleInequality(a, b, c));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::spanning::{build_spanning_tree, SpanningTreeKind};

    #[test]
    fn graph_metric_satisfies_axioms() {
        let g = generators::grid(3, 4);
        let m = GraphMetric::new(DistanceMatrix::new(&g));
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert!(check_metric_axioms(&m, 1e-9).is_empty());
    }

    #[test]
    fn tree_metric_satisfies_axioms_and_dominates_graph_metric() {
        let g = generators::cycle(9);
        let t = build_spanning_tree(&g, 0, SpanningTreeKind::ShortestPath);
        let tm = TreeMetric::new(&t);
        let gm = GraphMetric::new(DistanceMatrix::new(&g));
        assert!(check_metric_axioms(&tm, 1e-9).is_empty());
        for a in 0..9 {
            for b in 0..9 {
                assert!(tm.dist(a, b) >= gm.dist(a, b) - 1e-9);
            }
        }
    }

    #[test]
    fn explicit_metric_detects_violations() {
        // Asymmetric, non-zero diagonal and triangle violation all at once.
        let bad = ExplicitMetric::from_fn(3, |a, b| {
            if a == b {
                1.0
            } else if (a, b) == (0, 1) {
                5.0
            } else {
                1.0
            }
        });
        let violations = check_metric_axioms(&bad, 1e-9);
        assert!(violations
            .iter()
            .any(|v| matches!(v, MetricViolation::NonZeroSelfDistance(_))));
        assert!(violations
            .iter()
            .any(|v| matches!(v, MetricViolation::Asymmetric(_, _))));
        assert!(violations
            .iter()
            .any(|v| matches!(v, MetricViolation::TriangleInequality(_, _, _))));
    }

    #[test]
    fn manhattan_style_explicit_metric_is_a_metric() {
        // points = (position, time); distance = |dx| + |dt| — the shape of c_M.
        let pts: [(f64, f64); 4] = [(0.0, 0.0), (1.0, 3.0), (4.0, 1.0), (2.0, 2.0)];
        let m = ExplicitMetric::from_fn(pts.len(), |a, b| {
            (pts[a].0 - pts[b].0).abs() + (pts[a].1 - pts[b].1).abs()
        });
        assert!(check_metric_axioms(&m, 1e-9).is_empty());
    }
}
