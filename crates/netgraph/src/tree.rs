//! Rooted spanning trees: parent arrays, depths, LCA, tree distances and paths.
//!
//! The arrow protocol runs on a pre-selected rooted spanning tree `T`: the link
//! pointers are initialised to point along the tree towards the root (Section 2), a
//! `queue()` message always travels on the unique tree path between the requesting
//! node and the current sink, and the cost analysis is entirely in terms of the tree
//! distance `d_T(u, v)`. [`RootedTree`] provides those primitives with `O(log n)` LCA
//! queries (binary lifting) and `O(1)` distance queries given the LCA.

use crate::graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// A rooted spanning tree over nodes `0..n`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    /// Weight of the edge to the parent (0 for the root).
    parent_weight: Vec<f64>,
    children: Vec<Vec<NodeId>>,
    /// Hop depth from the root.
    depth: Vec<usize>,
    /// Weighted distance from the root.
    root_dist: Vec<f64>,
    /// Binary-lifting ancestor table: `up[k][v]` = 2^k-th ancestor of `v` (or root).
    up: Vec<Vec<NodeId>>,
}

impl RootedTree {
    /// Build a rooted tree from a parent array.
    ///
    /// `parents[v]` is `Some((parent, weight))` for every node except the root, which
    /// must be `None`. Exactly one root is required and the structure must be acyclic
    /// and connected.
    ///
    /// # Panics
    /// If there is not exactly one root, or the parent pointers do not form a tree.
    pub fn from_parents(parents: &[Option<(NodeId, f64)>]) -> Self {
        let n = parents.len();
        assert!(n > 0, "tree must have at least one node");
        let roots: Vec<NodeId> = parents
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i)
            .collect();
        assert!(
            roots.len() == 1,
            "expected exactly one root, found {}",
            roots.len()
        );
        let root = roots[0];

        let mut parent = vec![None; n];
        let mut parent_weight = vec![0.0; n];
        let mut children = vec![Vec::new(); n];
        for (v, p) in parents.iter().enumerate() {
            if let Some((u, w)) = *p {
                assert!(u < n, "parent {u} of {v} out of range");
                assert!(w > 0.0 && w.is_finite(), "edge weight must be positive");
                parent[v] = Some(u);
                parent_weight[v] = w;
                children[u].push(v);
            }
        }

        // BFS from the root to compute depths/distances and verify connectivity+acyclicity.
        let mut depth = vec![usize::MAX; n];
        let mut root_dist = vec![f64::INFINITY; n];
        let mut queue = std::collections::VecDeque::new();
        depth[root] = 0;
        root_dist[root] = 0.0;
        queue.push_back(root);
        let mut visited = 1;
        while let Some(u) = queue.pop_front() {
            for &c in &children[u] {
                assert!(depth[c] == usize::MAX, "cycle detected at node {c}");
                depth[c] = depth[u] + 1;
                root_dist[c] = root_dist[u] + parent_weight[c];
                visited += 1;
                queue.push_back(c);
            }
        }
        assert!(
            visited == n,
            "parent array does not form a connected tree ({visited}/{n} reachable)"
        );

        // Binary lifting table.
        let levels = (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize;
        let mut up = vec![vec![root; n]; levels.max(1)];
        for v in 0..n {
            up[0][v] = parent[v].unwrap_or(root);
        }
        for k in 1..up.len() {
            for v in 0..n {
                up[k][v] = up[k - 1][up[k - 1][v]];
            }
        }

        RootedTree {
            root,
            parent,
            parent_weight,
            children,
            depth,
            root_dist,
            up,
        }
    }

    /// Build a rooted tree from an (unrooted) tree graph and a chosen root.
    ///
    /// # Panics
    /// If `graph` is not a tree or `root` is out of range.
    pub fn from_tree_graph(graph: &Graph, root: NodeId) -> Self {
        assert!(graph.is_tree(), "graph is not a tree");
        assert!(root < graph.node_count(), "root out of range");
        let n = graph.node_count();
        let mut parents: Vec<Option<(NodeId, f64)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        seen[root] = true;
        while let Some(u) = stack.pop() {
            for &(v, w) in graph.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    parents[v] = Some((u, w));
                    stack.push(v);
                }
            }
        }
        RootedTree::from_parents(&parents)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v`, or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v]
    }

    /// Weight of the edge from `v` to its parent (0 for the root).
    pub fn parent_edge_weight(&self, v: NodeId) -> f64 {
        self.parent_weight[v]
    }

    /// Children of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v]
    }

    /// Hop depth of `v` below the root.
    pub fn depth(&self, v: NodeId) -> usize {
        self.depth[v]
    }

    /// Weighted distance from `v` to the root.
    pub fn root_distance(&self, v: NodeId) -> f64 {
        self.root_dist[v]
    }

    /// Tree neighbours of `v` (parent and children), in deterministic order.
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.children[v].len() + 1);
        if let Some(p) = self.parent[v] {
            out.push(p);
        }
        out.extend_from_slice(&self.children[v]);
        out
    }

    /// Lowest common ancestor of `u` and `v`.
    pub fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut u, mut v) = (u, v);
        if self.depth[u] < self.depth[v] {
            std::mem::swap(&mut u, &mut v);
        }
        // Lift u to v's depth.
        let mut diff = self.depth[u] - self.depth[v];
        let mut k = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                u = self.up[k][u];
            }
            diff >>= 1;
            k += 1;
        }
        if u == v {
            return u;
        }
        for k in (0..self.up.len()).rev() {
            if self.up[k][u] != self.up[k][v] {
                u = self.up[k][u];
                v = self.up[k][v];
            }
        }
        self.parent[u].expect("nodes in a tree always share an ancestor")
    }

    /// Weighted tree distance `d_T(u, v)`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        let l = self.lca(u, v);
        self.root_dist[u] + self.root_dist[v] - 2.0 * self.root_dist[l]
    }

    /// Hop distance between `u` and `v` on the tree.
    pub fn hop_distance(&self, u: NodeId, v: NodeId) -> usize {
        let l = self.lca(u, v);
        self.depth[u] + self.depth[v] - 2 * self.depth[l]
    }

    /// The unique tree path from `u` to `v`, inclusive of both endpoints.
    pub fn path(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let l = self.lca(u, v);
        let mut up_part = Vec::new();
        let mut cur = u;
        while cur != l {
            up_part.push(cur);
            cur = self.parent[cur].expect("walking up must reach the LCA");
        }
        up_part.push(l);
        let mut down_part = Vec::new();
        let mut cur = v;
        while cur != l {
            down_part.push(cur);
            cur = self.parent[cur].expect("walking up must reach the LCA");
        }
        up_part.extend(down_part.into_iter().rev());
        up_part
    }

    /// The first hop on the tree path from `u` towards `v` (`None` if `u == v`).
    pub fn next_hop(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        if u == v {
            return None;
        }
        let l = self.lca(u, v);
        if u == l {
            // v is in u's subtree: step down towards v.
            let mut cur = v;
            loop {
                let p = self.parent[cur].expect("v below l must have a parent");
                if p == u {
                    return Some(cur);
                }
                cur = p;
            }
        } else {
            self.parent[u]
        }
    }

    /// Weighted diameter of the tree (max pairwise tree distance), via double sweep.
    pub fn diameter(&self) -> f64 {
        let n = self.node_count();
        if n <= 1 {
            return 0.0;
        }
        // Farthest node from the root, then farthest node from that one.
        let far = |src: NodeId| -> (NodeId, f64) {
            (0..n)
                .map(|v| (v, self.distance(src, v)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap()
        };
        let (a, _) = far(self.root);
        let (_, d) = far(a);
        d
    }

    /// Hop-count diameter of the tree.
    pub fn hop_diameter(&self) -> usize {
        let n = self.node_count();
        if n <= 1 {
            return 0;
        }
        let far = |src: NodeId| -> (NodeId, usize) {
            (0..n)
                .map(|v| (v, self.hop_distance(src, v)))
                .max_by_key(|&(_, d)| d)
                .unwrap()
        };
        let (a, _) = far(self.root);
        let (_, d) = far(a);
        d
    }

    /// Convert the rooted tree into an (unrooted) tree [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let n = self.node_count();
        let mut g = Graph::new(n);
        for v in 0..n {
            if let Some(p) = self.parent[v] {
                g.add_weighted_edge(v, p, self.parent_weight[v]);
            }
        }
        g
    }

    /// Re-root the same tree at a different node.
    pub fn rerooted(&self, new_root: NodeId) -> RootedTree {
        RootedTree::from_tree_graph(&self.to_graph(), new_root)
    }

    /// Number of nodes in the subtree rooted at `v` (including `v`).
    pub fn subtree_size(&self, v: NodeId) -> usize {
        let mut count = 0;
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            count += 1;
            stack.extend_from_slice(&self.children[u]);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path 0-1-2-3-4 rooted at 0.
    fn path_tree() -> RootedTree {
        let parents = vec![
            None,
            Some((0, 1.0)),
            Some((1, 1.0)),
            Some((2, 1.0)),
            Some((3, 1.0)),
        ];
        RootedTree::from_parents(&parents)
    }

    /// A balanced binary tree on 7 nodes rooted at 0:
    ///        0
    ///       / \
    ///      1   2
    ///     / \ / \
    ///    3  4 5  6
    fn binary_tree() -> RootedTree {
        let parents = vec![
            None,
            Some((0, 1.0)),
            Some((0, 1.0)),
            Some((1, 1.0)),
            Some((1, 1.0)),
            Some((2, 1.0)),
            Some((2, 1.0)),
        ];
        RootedTree::from_parents(&parents)
    }

    #[test]
    fn basic_structure_queries() {
        let t = binary_tree();
        assert_eq!(t.root(), 0);
        assert_eq!(t.node_count(), 7);
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.parent(0), None);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.depth(6), 2);
        assert_eq!(t.root_distance(6), 2.0);
        assert_eq!(t.neighbors(1), vec![0, 3, 4]);
        assert_eq!(t.subtree_size(1), 3);
        assert_eq!(t.subtree_size(0), 7);
    }

    #[test]
    fn lca_and_distance_on_binary_tree() {
        let t = binary_tree();
        assert_eq!(t.lca(3, 4), 1);
        assert_eq!(t.lca(3, 6), 0);
        assert_eq!(t.lca(3, 3), 3);
        assert_eq!(t.lca(1, 3), 1);
        assert_eq!(t.distance(3, 4), 2.0);
        assert_eq!(t.distance(3, 6), 4.0);
        assert_eq!(t.distance(0, 0), 0.0);
        assert_eq!(t.hop_distance(3, 6), 4);
    }

    #[test]
    fn path_and_next_hop() {
        let t = binary_tree();
        assert_eq!(t.path(3, 6), vec![3, 1, 0, 2, 6]);
        assert_eq!(t.path(3, 3), vec![3]);
        assert_eq!(t.path(0, 4), vec![0, 1, 4]);
        assert_eq!(t.next_hop(3, 6), Some(1));
        assert_eq!(t.next_hop(0, 6), Some(2));
        assert_eq!(t.next_hop(0, 0), None);
        assert_eq!(t.next_hop(2, 5), Some(5));
    }

    #[test]
    fn diameter_of_path_and_binary_tree() {
        assert_eq!(path_tree().diameter(), 4.0);
        assert_eq!(path_tree().hop_diameter(), 4);
        assert_eq!(binary_tree().diameter(), 4.0);
    }

    #[test]
    fn weighted_distances() {
        let parents = vec![None, Some((0, 2.0)), Some((1, 3.0)), Some((0, 10.0))];
        let t = RootedTree::from_parents(&parents);
        assert_eq!(t.distance(2, 3), 15.0);
        assert_eq!(t.root_distance(2), 5.0);
        assert_eq!(t.diameter(), 15.0);
    }

    #[test]
    fn from_tree_graph_and_back() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (1, 3, 2.0), (3, 4, 1.0)]);
        let t = RootedTree::from_tree_graph(&g, 2);
        assert_eq!(t.root(), 2);
        assert_eq!(t.distance(0, 4), 4.0);
        let g2 = t.to_graph();
        assert_eq!(g2.edge_count(), 4);
        assert!(g2.is_tree());
        assert_eq!(g2.edge_weight(1, 3), Some(2.0));
    }

    #[test]
    fn rerooting_preserves_distances() {
        let t = binary_tree();
        let t2 = t.rerooted(5);
        assert_eq!(t2.root(), 5);
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(t.distance(u, v), t2.distance(u, v));
            }
        }
    }

    #[test]
    fn single_node_tree() {
        let t = RootedTree::from_parents(&[None]);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.diameter(), 0.0);
        assert_eq!(t.distance(0, 0), 0.0);
        assert_eq!(t.lca(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn two_roots_panics() {
        RootedTree::from_parents(&[None, None]);
    }

    #[test]
    #[should_panic(expected = "not a tree")]
    fn from_non_tree_graph_panics() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        RootedTree::from_tree_graph(&g, 0);
    }

    #[test]
    #[should_panic(expected = "connected tree")]
    fn cyclic_parents_panic() {
        // 1 and 2 form a cycle disconnected from the root 0.
        RootedTree::from_parents(&[None, Some((2, 1.0)), Some((1, 1.0))]);
    }
}
