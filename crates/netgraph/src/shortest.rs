//! Shortest paths, distance matrices, eccentricities, diameter and radius.
//!
//! The analysis of the arrow protocol is phrased in terms of the graph distance
//! `d_G(u, v)` and the tree distance `d_T(u, v)` (Section 3.1); the competitive bounds
//! depend on the tree's diameter `D` and its stretch `s`. This module provides the
//! distance machinery: Dijkstra (weighted), BFS (unweighted fast path) and all-pairs
//! distance matrices.
//!
//! The all-pairs computation is the hot path of every experiment sweep, so
//! [`DistanceMatrix::new`] runs parent-free single-source kernels that write straight
//! into the matrix rows and reuse one scratch heap/queue across all sources (no
//! per-source allocation). Sweeps that evaluate many runs on one topology should
//! compute the matrix once and share it via [`DistanceMatrix::shared`].

use crate::graph::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Result of a single-source shortest path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Source node.
    pub source: NodeId,
    /// Distance from the source to each node (`f64::INFINITY` if unreachable).
    pub dist: Vec<f64>,
    /// Predecessor of each node on a shortest path from the source (`None` for the
    /// source itself and unreachable nodes).
    pub parent: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Reconstruct a shortest path from the source to `target` (inclusive of both
    /// endpoints). Returns `None` if `target` is unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[target].is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance; tie-break on node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Single-source shortest paths with Dijkstra's algorithm.
///
/// Runs in `O((n + m) log n)`. Falls back to BFS automatically when the graph is
/// unweighted (all weights exactly 1; an O(1) check).
pub fn shortest_paths(graph: &Graph, source: NodeId) -> ShortestPaths {
    assert!(source < graph.node_count(), "source out of range");
    if graph.is_unweighted() {
        return bfs(graph, source);
    }
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in graph.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// Single-source shortest paths by breadth-first search (unit edge weights assumed).
pub fn bfs(graph: &Graph, source: NodeId) -> ShortestPaths {
    assert!(source < graph.node_count(), "source out of range");
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut queue = VecDeque::new();
    dist[source] = 0.0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in graph.neighbors(u) {
            if dist[v].is_infinite() {
                dist[v] = dist[u] + 1.0;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// Parent-free BFS kernel writing distances into `dist` (must be `INFINITY`-filled,
/// length `n`). `queue` is caller-owned scratch, cleared on entry.
fn bfs_dist_into(graph: &Graph, source: NodeId, dist: &mut [f64], queue: &mut VecDeque<NodeId>) {
    queue.clear();
    dist[source] = 0.0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &(v, _) in graph.neighbors(u) {
            if dist[v].is_infinite() {
                dist[v] = du + 1.0;
                queue.push_back(v);
            }
        }
    }
}

/// Parent-free Dijkstra kernel writing distances into `dist` (must be
/// `INFINITY`-filled, length `n`). `heap` is caller-owned scratch, cleared on entry.
fn dijkstra_dist_into(
    graph: &Graph,
    source: NodeId,
    dist: &mut [f64],
    heap: &mut BinaryHeap<HeapEntry>,
) {
    heap.clear();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in graph.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
}

/// All-pairs distance matrix, `n` single-source computations.
///
/// Memory is `O(n^2)`; fine up to a few thousand nodes which covers every experiment
/// in the paper (the largest is 76 processors). The computation allocates the matrix
/// once and reuses a single scratch heap/queue across all sources.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<f64>,
}

impl DistanceMatrix {
    /// Compute all-pairs shortest-path distances of `graph`.
    pub fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut dist = vec![f64::INFINITY; n * n];
        if graph.is_unweighted() {
            let mut queue = VecDeque::with_capacity(n);
            for s in 0..n {
                bfs_dist_into(graph, s, &mut dist[s * n..(s + 1) * n], &mut queue);
            }
        } else {
            let mut heap = BinaryHeap::with_capacity(n);
            for s in 0..n {
                dijkstra_dist_into(graph, s, &mut dist[s * n..(s + 1) * n], &mut heap);
            }
        }
        DistanceMatrix { n, dist }
    }

    /// Compute the matrix and wrap it in an [`Arc`] so sweeps can share one
    /// computation per topology across many runs (and across threads).
    pub fn shared(graph: &Graph) -> Arc<Self> {
        Arc::new(DistanceMatrix::new(graph))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Distance between `u` and `v` (`INFINITY` if disconnected).
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> f64 {
        debug_assert!(u < self.n && v < self.n, "pair ({u},{v}) out of range");
        self.dist[u * self.n + v]
    }

    /// The distances from `u` to every node, as one contiguous row.
    #[inline]
    pub fn row(&self, u: NodeId) -> &[f64] {
        &self.dist[u * self.n..(u + 1) * self.n]
    }

    /// Eccentricity of `u`: max distance to any other node.
    pub fn eccentricity(&self, u: NodeId) -> f64 {
        self.row(u).iter().copied().fold(0.0_f64, f64::max)
    }

    /// Diameter: max eccentricity over all nodes. 0 for graphs with < 2 nodes.
    pub fn diameter(&self) -> f64 {
        (0..self.n)
            .map(|u| self.eccentricity(u))
            .fold(0.0, f64::max)
    }

    /// Radius: min eccentricity over all nodes.
    pub fn radius(&self) -> f64 {
        (0..self.n)
            .map(|u| self.eccentricity(u))
            .fold(f64::INFINITY, f64::min)
    }

    /// A node with minimum eccentricity (a "center"), breaking ties by smallest id.
    pub fn center(&self) -> Option<NodeId> {
        (0..self.n).min_by(|&a, &b| {
            self.eccentricity(a)
                .partial_cmp(&self.eccentricity(b))
                .unwrap_or(Ordering::Equal)
        })
    }

    /// True if every pair of nodes is at finite distance.
    pub fn is_connected(&self) -> bool {
        self.dist.iter().all(|d| d.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = path_graph(5);
        let sp = shortest_paths(&g, 0);
        assert_eq!(sp.dist, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sp.path_to(4), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(sp.path_to(0), Some(vec![0]));
    }

    #[test]
    fn dijkstra_prefers_lighter_path() {
        // 0 -1- 1 -1- 2  and a heavy direct edge 0 -5- 2
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]);
        let sp = shortest_paths(&g, 0);
        assert_eq!(sp.dist[2], 2.0);
        assert_eq!(sp.path_to(2), Some(vec![0, 1, 2]));
    }

    #[test]
    fn unreachable_nodes_have_infinite_distance() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let sp = shortest_paths(&g, 0);
        assert!(sp.dist[2].is_infinite());
        assert_eq!(sp.path_to(2), None);
    }

    #[test]
    fn distance_matrix_diameter_radius_center() {
        let g = path_graph(7);
        let dm = DistanceMatrix::new(&g);
        assert_eq!(dm.diameter(), 6.0);
        assert_eq!(dm.radius(), 3.0);
        assert_eq!(dm.center(), Some(3));
        assert!(dm.is_connected());
        assert_eq!(dm.dist(1, 5), 4.0);
        assert_eq!(dm.dist(5, 1), 4.0);
    }

    #[test]
    fn distance_matrix_weighted() {
        let g = Graph::from_edges(4, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0), (0, 3, 20.0)]);
        let dm = DistanceMatrix::new(&g);
        assert_eq!(dm.dist(0, 3), 9.0);
        assert_eq!(dm.diameter(), 9.0);
    }

    #[test]
    fn matrix_rows_match_single_source_runs() {
        // Weighted and unweighted matrices must agree with the allocating kernels.
        let weighted = Graph::from_edges(5, &[(0, 1, 2.5), (1, 2, 1.0), (2, 3, 0.5), (3, 4, 4.0)]);
        let unweighted = path_graph(6);
        for g in [&weighted, &unweighted] {
            let dm = DistanceMatrix::new(g);
            for s in 0..g.node_count() {
                let sp = shortest_paths(g, s);
                assert_eq!(dm.row(s), &sp.dist[..], "source {s}");
            }
        }
    }

    #[test]
    fn shared_matrix_is_the_same_data() {
        let g = path_graph(4);
        let dm = DistanceMatrix::shared(&g);
        let plain = DistanceMatrix::new(&g);
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(dm.dist(u, v), plain.dist(u, v));
            }
        }
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::new(1);
        let dm = DistanceMatrix::new(&g);
        assert_eq!(dm.diameter(), 0.0);
        assert_eq!(dm.radius(), 0.0);
        assert!(dm.is_connected());
    }

    #[test]
    fn eccentricity_of_path_endpoint() {
        let g = path_graph(5);
        let dm = DistanceMatrix::new(&g);
        assert_eq!(dm.eccentricity(0), 4.0);
        assert_eq!(dm.eccentricity(2), 2.0);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn out_of_range_source_panics() {
        shortest_paths(&Graph::new(2), 7);
    }
}
