//! Network topology generators.
//!
//! The experiments need several families: the paper's own experiment (Section 5) uses a
//! complete graph with uniform latencies (the SP2's interconnect), the lower bound of
//! Theorem 4.1 lives on a path, and the competitive-ratio sweeps exercise grids, random
//! geometric graphs and Erdős–Rényi graphs to vary stretch and diameter independently.

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A path `0 - 1 - ... - (n-1)` with unit weights.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_weighted_edge_unchecked(i - 1, i, 1.0);
    }
    g
}

/// A cycle on `n >= 3` nodes with unit weights.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = path(n);
    g.add_weighted_edge_unchecked(n - 1, 0, 1.0);
    g
}

/// A star with node 0 at the center and `n - 1` leaves, unit weights.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_weighted_edge_unchecked(0, i, 1.0);
    }
    g
}

/// The complete graph on `n` nodes with uniform edge weight `weight`.
///
/// This is the topology of the paper's experimental platform: "the message latency
/// between any pair of nodes in the SP2 machine was roughly the same, \[so\] we could
/// treat the network as a complete graph with all edges having the same weight".
pub fn complete(n: usize, weight: f64) -> Graph {
    let edges: Vec<(NodeId, NodeId, f64)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v, weight)))
        .collect();
    Graph::from_edges_unchecked(n, &edges)
}

/// A `rows × cols` 2D grid with unit weights.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut g = Graph::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_weighted_edge_unchecked(id(r, c), id(r, c + 1), 1.0);
            }
            if r + 1 < rows {
                g.add_weighted_edge_unchecked(id(r, c), id(r + 1, c), 1.0);
            }
        }
    }
    g
}

/// A `rows × cols` 2D torus (grid with wraparound), unit weights. Needs `rows, cols >= 3`.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
    let n = rows * cols;
    let mut g = Graph::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            g.add_weighted_edge_unchecked(id(r, c), id(r, (c + 1) % cols), 1.0);
            g.add_weighted_edge_unchecked(id(r, c), id((r + 1) % rows, c), 1.0);
        }
    }
    g
}

/// A `d`-dimensional hypercube (`2^d` nodes), unit weights.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                g.add_weighted_edge_unchecked(u, v, 1.0);
            }
        }
    }
    g
}

/// A complete (perfectly balanced) binary tree on `n` nodes with unit weights.
///
/// Node `i`'s children are `2i + 1` and `2i + 2` (heap layout); the root is node 0.
/// This is the spanning tree used in the paper's experiment ("a perfectly balanced
/// binary tree (log2 n depth for n nodes)").
pub fn balanced_binary_tree(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_weighted_edge_unchecked(i, (i - 1) / 2, 1.0);
    }
    g
}

/// A uniformly random labelled tree on `n` nodes (via a random Prüfer sequence),
/// unit weights.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    if n <= 1 {
        return Graph::new(n);
    }
    if n == 2 {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        return g;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let prufer: Vec<NodeId> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut g = Graph::new(n);
    let mut leaves: std::collections::BTreeSet<NodeId> =
        (0..n).filter(|&v| degree[v] == 1).collect();
    for &p in &prufer {
        let leaf = *leaves.iter().next().expect("prufer decoding invariant");
        leaves.remove(&leaf);
        g.add_weighted_edge_unchecked(leaf, p, 1.0);
        degree[p] -= 1;
        if degree[p] == 1 {
            leaves.insert(p);
        }
    }
    let rest: Vec<NodeId> = leaves.into_iter().collect();
    g.add_weighted_edge_unchecked(rest[0], rest[1], 1.0);
    g
}

/// An Erdős–Rényi `G(n, p)` graph, patched to be connected by adding a random
/// spanning-tree backbone first. Unit weights.
pub fn erdos_renyi_connected(n: usize, p: f64, seed: u64) -> Graph {
    let mut g = random_tree(n, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e3779b97f4a7c15));
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) && rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_weighted_edge_unchecked(u, v, 1.0);
            }
        }
    }
    g
}

/// A random geometric graph: `n` points uniform in the unit square, connected when
/// within Euclidean distance `radius`; edge weights are the Euclidean distances.
/// A minimum-spanning-tree-like backbone (nearest unconnected point chain) is added to
/// guarantee connectivity.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let dist = |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let d = dist(points[u], points[v]);
            if d <= radius && d > 0.0 {
                g.add_weighted_edge_unchecked(u, v, d);
            }
        }
    }
    // Guarantee connectivity: greedily connect each unreached node to its nearest
    // reached node (a Prim-like backbone), if it is not already connected.
    let mut reached = vec![false; n.max(1)];
    if n > 0 {
        reached[0] = true;
    }
    let mut frontier = vec![0usize];
    while let Some(u) = frontier.pop() {
        for &(v, _) in g.neighbors(u) {
            if !reached[v] {
                reached[v] = true;
                frontier.push(v);
            }
        }
    }
    for v in 0..n {
        if !reached[v] {
            // nearest reached node
            let (best, d) = (0..n)
                .filter(|&u| reached[u])
                .map(|u| (u, dist(points[u], points[v])))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .expect("at least node 0 is reached");
            let w = if d > 0.0 { d } else { 1e-6 };
            if !g.has_edge(best, v) {
                g.add_weighted_edge_unchecked(best, v, w);
            }
            // Mark v's whole component reached.
            reached[v] = true;
            let mut stack = vec![v];
            while let Some(u) = stack.pop() {
                for &(x, _) in g.neighbors(u) {
                    if !reached[x] {
                        reached[x] = true;
                        stack.push(x);
                    }
                }
            }
        }
    }
    g
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant leaves.
/// Useful for constructing trees with large stretch when embedded in denser graphs.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut g = Graph::new(n);
    for i in 1..spine {
        g.add_weighted_edge_unchecked(i - 1, i, 1.0);
    }
    for s in 0..spine {
        for l in 0..legs {
            g.add_weighted_edge_unchecked(s, spine + s * legs + l, 1.0);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest::DistanceMatrix;

    #[test]
    fn path_cycle_star_shapes() {
        let p = path(6);
        assert_eq!(p.edge_count(), 5);
        assert!(p.is_tree());

        let c = cycle(6);
        assert_eq!(c.edge_count(), 6);
        assert!(c.is_connected());
        assert!(!c.is_tree());

        let s = star(6);
        assert!(s.is_tree());
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.degree(3), 1);
    }

    #[test]
    fn complete_graph_edge_count_and_weight() {
        let g = complete(10, 2.0);
        assert_eq!(g.edge_count(), 45);
        assert_eq!(g.edge_weight(3, 7), Some(2.0));
        let dm = DistanceMatrix::new(&g);
        assert_eq!(dm.diameter(), 2.0);
    }

    #[test]
    fn grid_and_torus_diameters() {
        let g = grid(4, 5);
        assert_eq!(g.node_count(), 20);
        assert!(g.is_connected());
        let dm = DistanceMatrix::new(&g);
        assert_eq!(dm.diameter(), 3.0 + 4.0);

        let t = torus(4, 4);
        assert!(t.is_connected());
        let dmt = DistanceMatrix::new(&t);
        assert_eq!(dmt.diameter(), 4.0); // 2 + 2 wraparound
    }

    #[test]
    fn hypercube_properties() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(g.max_degree(), 4);
        let dm = DistanceMatrix::new(&g);
        assert_eq!(dm.diameter(), 4.0);
    }

    #[test]
    fn balanced_binary_tree_depth() {
        let g = balanced_binary_tree(15);
        assert!(g.is_tree());
        let dm = DistanceMatrix::new(&g);
        // depth 3 on both sides of the root
        assert_eq!(dm.diameter(), 6.0);
        assert_eq!(dm.eccentricity(0), 3.0);
    }

    #[test]
    fn random_tree_is_a_tree_for_various_sizes() {
        for n in [1usize, 2, 3, 5, 17, 64] {
            let g = random_tree(n, 42);
            if n >= 1 {
                assert!(g.is_tree(), "n = {n}");
            }
        }
        // Determinism
        let a = random_tree(20, 7);
        let b = random_tree(20, 7);
        assert_eq!(a.edges().len(), b.edges().len());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!((ea.u, ea.v), (eb.u, eb.v));
        }
    }

    #[test]
    fn erdos_renyi_is_connected() {
        for seed in 0..5 {
            let g = erdos_renyi_connected(30, 0.05, seed);
            assert!(g.is_connected());
            assert!(g.edge_count() >= 29);
        }
    }

    #[test]
    fn random_geometric_is_connected_with_positive_weights() {
        for seed in 0..5 {
            let g = random_geometric(40, 0.2, seed);
            assert!(g.is_connected(), "seed {seed}");
            assert!(g.edges().iter().all(|e| e.weight > 0.0));
        }
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar(4, 2);
        assert_eq!(g.node_count(), 12);
        assert!(g.is_tree());
        assert_eq!(g.degree(0), 3); // one spine neighbor + 2 legs
        assert_eq!(g.degree(1), 4); // two spine neighbors + 2 legs
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        cycle(2);
    }

    #[test]
    fn one_row_grid_is_a_path() {
        for k in [1usize, 2, 7] {
            let g = grid(1, k);
            assert_eq!(g.node_count(), k);
            assert_eq!(g.edge_count(), k.saturating_sub(1));
            assert!(g.is_tree(), "grid(1, {k}) should be a path");
        }
        // And the transpose: one column.
        let g = grid(7, 1);
        assert!(g.is_tree());
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn zero_dimensional_hypercube_is_a_single_node() {
        let g = hypercube(0);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
        assert!(g.is_tree());
    }

    #[test]
    fn legless_caterpillar_is_its_spine() {
        for spine in [1usize, 2, 5] {
            let g = caterpillar(spine, 0);
            assert_eq!(g.node_count(), spine);
            assert_eq!(g.edge_count(), spine.saturating_sub(1));
            assert!(g.is_tree(), "caterpillar({spine}, 0) should be a path");
        }
    }
}
