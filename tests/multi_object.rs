//! Multi-object directory integration tests: K objects sharing one spanning tree,
//! validated end-to-end on the deterministic simulator and on the live (one OS
//! thread per node) runtime.
//!
//! The headline scenario is the ISSUE's acceptance case: a K = 16-object
//! Zipf-skewed workload on a 256-node instance must produce K independently valid
//! per-object queuing orders in both runtimes.

use arrow_bench::multi_object::multi_object_workload;
use arrow_core::live::{ArrowRuntime, CriticalSectionLog, SectionRecord};
use arrow_core::prelude::*;
use desim::{SimRng, SimTime};
use netgraph::{generators, RootedTree};
use std::sync::Arc;
use std::time::Instant;

/// K = 16 objects, 256 nodes, Zipf-skewed popularity, simulator: every object's
/// queue must independently validate as a total order covering exactly that
/// object's requests.
#[test]
fn k16_zipf_on_256_nodes_validates_per_object_in_the_simulator() {
    let (instance, schedule) = multi_object_workload(256, 16, 2_000, 1);
    assert_eq!(
        schedule.objects().len(),
        16,
        "workload must touch all 16 objects"
    );
    for config in [
        RunConfig::analysis(ProtocolKind::Arrow),
        RunConfig::analysis(ProtocolKind::Arrow).asynchronous(5),
        RunConfig::analysis(ProtocolKind::Centralized),
    ] {
        let outcome = run_schedule(&instance, &schedule, &config);
        assert_eq!(outcome.object_count(), 16);
        let mut covered = 0;
        for (obj, order) in &outcome.orders {
            let sub = outcome.schedule.for_object(*obj);
            // The order is already validated by the harness; check it covers the
            // object's sub-schedule exactly and only mentions that object's requests.
            assert_eq!(order.len(), sub.len(), "object {obj}");
            for &id in order.order() {
                assert_eq!(outcome.schedule.get(id).unwrap().obj, *obj);
            }
            covered += order.len();
        }
        assert_eq!(covered, schedule.len(), "orders partition the requests");
    }
}

/// Same scenario on the live runtime: 256 node threads serving 16 objects. Every
/// object's token is a mutual-exclusion witness for its queue — overlapping critical
/// sections for one object would mean its queuing order was invalid.
#[test]
fn k16_on_256_nodes_live_runtime_grants_valid_per_object_queues() {
    let n = 256;
    let k = 16usize;
    let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0);
    let rt = Arc::new(ArrowRuntime::spawn_multi(&tree, k));
    // Zipf-ish access pattern: requester nodes drawn per object from a seeded RNG.
    let acquires_per_worker = 6;
    let workers_per_object = 3;
    let logs: Vec<CriticalSectionLog> = (0..k).map(|_| CriticalSectionLog::new()).collect();
    let mut joins = Vec::new();
    let mut rng = SimRng::new(42);
    for (obj, obj_log) in logs.iter().enumerate() {
        for _ in 0..workers_per_object {
            let node = rng.index(n);
            let h = rt.handle(node);
            let log = obj_log.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..acquires_per_worker {
                    let req = h.acquire_object(ObjectId(obj as u32));
                    let entered = Instant::now();
                    std::thread::yield_now();
                    log.record(SectionRecord {
                        node,
                        request: req,
                        entered,
                        exited: Instant::now(),
                    });
                    h.release_object(ObjectId(obj as u32), req);
                }
            }));
        }
    }
    for j in joins {
        j.join().unwrap();
    }
    let expected = (k * workers_per_object * acquires_per_worker) as u64;
    assert_eq!(rt.stats().snapshot().2, expected, "every acquire granted");
    for (obj, log) in logs.iter().enumerate() {
        assert_eq!(log.len(), workers_per_object * acquires_per_worker);
        assert!(
            log.find_overlap().is_none(),
            "object {obj}: two critical sections overlapped — its queue is not a total order"
        );
    }
    Arc::try_unwrap(rt).ok().unwrap().shutdown();
}

/// Property test: for random topologies, object counts and multi-object schedules,
/// the per-object orders re-validate from the raw sub-schedules and partition the
/// request set.
#[test]
fn per_object_orders_always_validate_as_queuing_orders() {
    for case in 0..24u64 {
        let mut rng = SimRng::new(0x0B7EC7 + case);
        let graph = match rng.index(3) {
            0 => generators::complete(4 + rng.index(12), 1.0),
            1 => generators::grid(2 + rng.index(3), 2 + rng.index(4)),
            _ => generators::random_tree(4 + rng.index(12), rng.uniform_u64(0, u64::MAX - 1)),
        };
        let n = graph.node_count();
        let tree = netgraph::spanning::build_spanning_tree(
            &graph,
            rng.index(n),
            SpanningTreeKind::ShortestPath,
        );
        let instance = Instance::new(graph, tree);
        let k = 1 + rng.index(5);
        let count = 1 + rng.index(30);
        let triples: Vec<(usize, SimTime, ObjectId)> = (0..count)
            .map(|_| {
                (
                    rng.index(n),
                    SimTime::from_subticks(rng.uniform_u64(0, 20) * desim::SUBTICKS_PER_UNIT / 2),
                    ObjectId(rng.index(k) as u32),
                )
            })
            .collect();
        let schedule = RequestSchedule::from_object_pairs(&triples);
        let sync = RunConfig::analysis(ProtocolKind::Arrow);
        let config = if case % 2 == 0 {
            sync
        } else {
            sync.asynchronous(case)
        };
        let outcome = run_schedule(&instance, &schedule, &config);
        // One order per touched object, each a permutation of the object's requests.
        assert_eq!(
            outcome.object_count(),
            schedule.objects().len(),
            "case {case}"
        );
        let mut total = 0;
        for (obj, order) in &outcome.orders {
            let sub = outcome.schedule.for_object(*obj);
            assert_eq!(order.len(), sub.len(), "case {case} object {obj}");
            let mut in_order: Vec<RequestId> = order.order().to_vec();
            in_order.sort();
            let mut in_sub: Vec<RequestId> = sub.requests().iter().map(|r| r.id).collect();
            in_sub.sort();
            assert_eq!(in_order, in_sub, "case {case} object {obj}");
            total += order.len();
        }
        assert_eq!(total, schedule.len(), "case {case}");
    }
}

/// A single-object run through the multi-object machinery is byte-identical to the
/// legacy single-object contract: `outcome.order` is the one order, and `orders`
/// holds exactly the default object.
#[test]
fn single_object_runs_keep_the_legacy_shape() {
    let instance = Instance::complete_uniform(16, SpanningTreeKind::BalancedBinary);
    let schedule = workload::uniform_random(16, 100, 10.0, 3);
    let outcome = run_schedule(
        &instance,
        &schedule,
        &RunConfig::analysis(ProtocolKind::Arrow),
    );
    assert_eq!(outcome.object_count(), 1);
    assert_eq!(outcome.orders[0].0, ObjectId::DEFAULT);
    assert_eq!(outcome.order.order(), outcome.orders[0].1.order());
    assert_eq!(outcome.order.len(), 100);
}
