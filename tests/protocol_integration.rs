//! Cross-crate integration tests: the arrow protocol and the centralized baseline
//! running on the full stack (netgraph topologies + desim simulator + arrow-core
//! harness), across topologies, spanning trees, workloads and synchrony models.

use arrow_core::prelude::*;
use desim::SimTime;
use netgraph::spanning::build_spanning_tree;
use netgraph::{generators, RootedTree};

/// Every (topology, tree, workload, synchrony) combination must produce a valid total
/// order covering every request exactly once.
#[test]
fn arrow_produces_valid_orders_across_many_instances() {
    let topologies: Vec<(&str, netgraph::Graph)> = vec![
        ("complete-12", generators::complete(12, 1.0)),
        ("grid-4x4", generators::grid(4, 4)),
        ("cycle-15", generators::cycle(15)),
        ("hypercube-4", generators::hypercube(4)),
        (
            "random-geometric-20",
            generators::random_geometric(20, 0.4, 7),
        ),
        (
            "erdos-renyi-18",
            generators::erdos_renyi_connected(18, 0.15, 3),
        ),
    ];
    let kinds = [
        SpanningTreeKind::ShortestPath,
        SpanningTreeKind::MinimumWeight,
        SpanningTreeKind::MinimumCommunication,
    ];
    for (name, graph) in &topologies {
        for &kind in &kinds {
            let tree = build_spanning_tree(graph, 0, kind);
            let instance = Instance::new(graph.clone(), tree);
            let n = instance.node_count();
            for (wl_name, schedule) in [
                (
                    "burst",
                    workload::one_shot_burst(&(0..n).collect::<Vec<_>>(), SimTime::ZERO),
                ),
                ("poisson", workload::poisson(n, 1.5, 10.0, 11)),
                ("hotspot", workload::hotspot(n, &[0], 0.6, 3 * n, 8.0, 5)),
            ] {
                if schedule.is_empty() {
                    continue;
                }
                let expected = schedule.len();
                for (mode_name, cfg) in [
                    ("sync", RunConfig::analysis(ProtocolKind::Arrow)),
                    (
                        "async",
                        RunConfig::analysis(ProtocolKind::Arrow).asynchronous(99),
                    ),
                ] {
                    let outcome = run(&instance, &Workload::OpenLoop(schedule.clone()), &cfg);
                    assert_eq!(
                        outcome.order.len(),
                        expected,
                        "{name}/{kind:?}/{wl_name}/{mode_name}: wrong order length"
                    );
                    assert!(outcome.total_latency >= 0.0);
                }
            }
        }
    }
}

/// Arrow and the centralized protocol queue the same request set; the orders may
/// differ but both must be valid and the per-request latency of arrow must respect
/// the tree diameter bound for sequential requests (Demmer–Herlihy).
#[test]
fn sequential_requests_cost_at_most_the_diameter_per_operation() {
    let graph = generators::grid(5, 5);
    let tree = build_spanning_tree(&graph, 0, SpanningTreeKind::ShortestPath);
    let instance = Instance::new(graph, tree);
    let diameter = instance.stretch_report().tree_diameter;

    let nodes: Vec<usize> = (0..25).collect();
    let schedule = workload::sequential_round_robin(&nodes, 30, diameter + 1.0);
    let outcome = run(
        &instance,
        &Workload::OpenLoop(schedule),
        &RunConfig::analysis(ProtocolKind::Arrow),
    );
    for (id, latency) in outcome.order.latencies(&outcome.schedule) {
        assert!(
            latency.as_units_f64() <= diameter + 1e-9,
            "request {id} took {latency} > diameter {diameter}"
        );
    }
    // In the sequential case arrow's order is exactly the issue order.
    let order_ids: Vec<u64> = outcome.order.order().iter().map(|r| r.0).collect();
    let issue_ids: Vec<u64> = outcome.schedule.requests().iter().map(|r| r.id.0).collect();
    assert_eq!(order_ids, issue_ids);
}

/// The same seed must give byte-identical outcomes (determinism), and different seeds
/// must be allowed to differ (asynchronous model actually samples delays).
#[test]
fn asynchronous_runs_are_deterministic_per_seed() {
    let instance = Instance::complete_uniform(10, SpanningTreeKind::BalancedBinary);
    let schedule = workload::uniform_random(10, 40, 15.0, 3);
    let run_with = |seed: u64| {
        run(
            &instance,
            &Workload::OpenLoop(schedule.clone()),
            &RunConfig::analysis(ProtocolKind::Arrow).asynchronous(seed),
        )
    };
    let a1 = run_with(5);
    let a2 = run_with(5);
    assert_eq!(a1.total_latency, a2.total_latency);
    assert_eq!(a1.order.order(), a2.order.order());
    assert_eq!(a1.protocol_messages, a2.protocol_messages);
}

/// Centralized protocol: every remote request costs exactly two protocol messages,
/// and the order is arrival order at the central node.
#[test]
fn centralized_message_accounting() {
    let instance = Instance::complete_uniform(9, SpanningTreeKind::Star);
    let n = instance.node_count();
    let schedule = workload::one_shot_burst(&(0..n).collect::<Vec<_>>(), SimTime::ZERO);
    let outcome = run(
        &instance,
        &Workload::OpenLoop(schedule),
        &RunConfig::analysis(ProtocolKind::Centralized),
    );
    // 8 remote requests * 2 messages (the root's own request is local).
    assert_eq!(outcome.protocol_messages, 16);
    assert_eq!(outcome.order.len(), 9);
}

/// Arrow on a path where all requests come from the far end: every queue() message
/// walks the whole path the first time, then the tail stays put (locality).
#[test]
fn repeated_requests_from_one_node_become_local_after_the_first() {
    let graph = generators::path(12);
    let instance = Instance::tree_only(graph, 0);
    let schedule = workload::sequential_round_robin(&[11], 5, 30.0);
    let outcome = run(
        &instance,
        &Workload::OpenLoop(schedule),
        &RunConfig::analysis(ProtocolKind::Arrow),
    );
    // First request pays the full path (11 hops); the rest are local (0 hops).
    assert_eq!(outcome.protocol_messages, 11);
    assert_eq!(outcome.total_latency, 11.0);
}

/// The live (thread + channel) runtime and the simulator agree on the fundamental
/// guarantee: every acquisition is granted exactly once and mutual exclusion holds.
#[test]
fn live_runtime_agrees_with_simulation_guarantees() {
    use arrow_core::live::{ArrowRuntime, CriticalSectionLog, DistributedLock};
    use std::sync::Arc;

    let tree = RootedTree::from_tree_graph(&generators::balanced_binary_tree(9), 0);
    let runtime = Arc::new(ArrowRuntime::spawn(&tree));
    let log = CriticalSectionLog::new();
    let mut workers = Vec::new();
    for v in 0..9 {
        let lock = DistributedLock::new(runtime.handle(v), log.clone());
        workers.push(std::thread::spawn(move || {
            for _ in 0..5 {
                lock.with(std::thread::yield_now);
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(log.len(), 45);
    assert!(log.find_overlap().is_none());
    let (_, _, acquisitions) = runtime.stats().snapshot();
    assert_eq!(acquisitions, 45);
    Arc::try_unwrap(runtime).ok().unwrap().shutdown();
}

/// Local processing order of simultaneous arrivals must not affect the validity of
/// the outcome (Section 3.1 says the analysis is independent of it).
#[test]
fn random_local_processing_order_still_yields_valid_orders() {
    let instance = Instance::complete_uniform(14, SpanningTreeKind::BalancedBinary);
    let n = instance.node_count();
    let schedule = workload::one_shot_burst(&(0..n).collect::<Vec<_>>(), SimTime::ZERO);
    for seed in 0..5 {
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule.clone()),
            &RunConfig::analysis(ProtocolKind::Arrow).asynchronous(seed),
        );
        assert_eq!(outcome.order.len(), n);
    }
}
