//! Model-checker regression suite: the two historical bugs must be *caught*
//! when their fixes are reverted via [`BugSwitch`], with counterexamples that
//! export to grammar-valid conformance replay files — and the shipped protocol
//! must verify clean under the exact same budgets. Also pins down the claims
//! the checker's design rests on: pruning actually prunes (dedup + sleep sets
//! beat the naive search by far more than 2x on the same scenario) and
//! isomorphism-representative sweeps reach the same verdicts as full labelled
//! enumeration.

use arrow_conformance::ReplayCase;
use arrow_model::{
    enumerate_trees, explore, export_replay, representative_trees, sweep, BugSwitch,
    Counterexample, ExploreConfig, ModelInvariant, Scenario, SweepOutcome,
};
use netgraph::{generators, RootedTree};

/// Budgets that exhaust PR 6's orphaned-grant scenario: no crashes (so no
/// detection-driven epoch bump can mask the wedge), one waiter abandonment,
/// and enough requests that something can starve behind the wedged token.
fn orphaned_grant_sweep(bound: usize, bug: BugSwitch) -> SweepOutcome {
    let config = ExploreConfig {
        bug,
        ..ExploreConfig::default()
    };
    let trees = (2..=bound).flat_map(representative_trees).collect();
    sweep(trees, 1, 3, 0, 1, &config, |_, _| {})
}

/// Budgets that exhaust PR 5's stale-frame scenario: one crash/restart episode
/// puts pre-recovery frames next to post-recovery epochs on the same links.
fn stale_frame_sweep(bound: usize, bug: BugSwitch) -> SweepOutcome {
    let config = ExploreConfig {
        bug,
        ..ExploreConfig::default()
    };
    let trees = (2..=bound).flat_map(representative_trees).collect();
    sweep(trees, 1, 2, 1, 0, &config, |_, _| {})
}

/// The counterexample must round-trip through the conformance replay grammar:
/// parse back, carry the model's exact tree, and pass fault-schedule
/// validation — that is what makes it *replayable* against the live tiers.
fn assert_replayable(scenario: &Scenario, cx: &Counterexample) {
    let text = export_replay(scenario, cx).expect("replay export must find a tree seed");
    let case = ReplayCase::from_replay_text(&text).expect("export must be grammar-valid");
    let instance = case.spec.build_instance();
    case.fault_schedule()
        .validate(instance.tree())
        .expect("exported fault schedule must validate");
    for v in 0..scenario.tree.node_count() {
        assert_eq!(
            instance.tree().parent(v),
            scenario.tree.parent(v),
            "replay case must rebuild the model's exact tree (node {v})"
        );
    }
    assert!(
        text.contains("# Counterexample"),
        "trace comments must be embedded"
    );
}

#[test]
fn orphaned_grant_wedge_is_caught_with_replayable_counterexample() {
    let outcome = orphaned_grant_sweep(3, BugSwitch::OrphanedGrantWedge);
    let (scenario, cx) = outcome
        .failure
        .expect("reverting the orphaned-grant fix must produce a violation");
    assert!(
        cx.violations
            .iter()
            .any(|v| v.invariant == ModelInvariant::Deadlock),
        "the wedged token must starve a queued request: {:?}",
        cx.violations
    );
    assert!(
        cx.trace
            .iter()
            .any(|t| t.to_string().starts_with("abandon")),
        "the counterexample must involve an abandoned waiter: {:?}",
        cx.trace
    );
    assert_replayable(&scenario, &cx);
}

#[test]
fn stale_frame_accept_is_caught_with_replayable_counterexample() {
    let outcome = stale_frame_sweep(3, BugSwitch::StaleFrameAccept);
    let (scenario, cx) = outcome
        .failure
        .expect("reverting the stale-frame rejection must produce a violation");
    assert!(
        !cx.violations.is_empty(),
        "counterexample must carry at least one violation"
    );
    assert!(
        cx.trace.iter().any(|t| t.to_string().starts_with("crash")),
        "stale frames only exist across a crash episode: {:?}",
        cx.trace
    );
    assert_replayable(&scenario, &cx);
}

#[test]
fn fixed_protocol_is_clean_under_the_regression_budgets() {
    // The same budgets that catch the reverted bugs verify clean as shipped,
    // so the regression tests above are evidence about the bugs, not noise.
    let orphan = orphaned_grant_sweep(3, BugSwitch::None);
    assert!(orphan.ok(), "orphaned-grant budgets: {:?}", orphan.failure);
    let stale = stale_frame_sweep(3, BugSwitch::None);
    assert!(stale.ok(), "stale-frame budgets: {:?}", stale.failure);
}

#[test]
fn dedup_and_reduction_prune_more_than_2x_vs_naive() {
    // Same scenario, two searches: the default (canonical-hash dedup +
    // sleep-set reduction) against the naive full DFS. Identical verdicts,
    // and the optimized search must expand less than half the transitions —
    // the acceptance bar for the pruning machinery actually earning its keep.
    let scenario = Scenario::fault_free(RootedTree::from_tree_graph(&generators::path(3), 0), 1, 3);
    let optimized = explore(&scenario, &ExploreConfig::default());
    let naive = explore(
        &scenario,
        &ExploreConfig {
            dedup: false,
            reduce: false,
            ..ExploreConfig::default()
        },
    );
    assert!(optimized.ok() && naive.ok(), "both searches must be clean");
    assert!(!naive.stats.capped, "naive search must run to completion");
    assert_eq!(
        optimized.stats.quiescent > 0,
        naive.stats.quiescent > 0,
        "both must reach drained states"
    );
    assert!(
        naive.stats.transitions > 2 * optimized.stats.transitions,
        "pruning must beat naive by >2x: naive={} optimized={}",
        naive.stats.transitions,
        optimized.stats.transitions
    );
    // Dedup skips revisits, so every state the optimized search *enters* is
    // distinct; the naive entry count exceeds the true state count.
    assert!(naive.stats.states > optimized.stats.states);
}

#[test]
fn representative_trees_reach_the_same_verdict_as_all_labellings() {
    // Paranoia check for the isomorphism-class shortcut (lib.rs promises this
    // lives here): verdicts must agree on both a clean and a buggy sweep.
    for (bug, expect_clean) in [
        (BugSwitch::None, true),
        (BugSwitch::StaleFrameAccept, false),
    ] {
        let config = ExploreConfig {
            bug,
            ..ExploreConfig::default()
        };
        let all = sweep(enumerate_trees(3), 1, 2, 1, 0, &config, |_, _| {});
        let reps = sweep(representative_trees(3), 1, 2, 1, 0, &config, |_, _| {});
        assert_eq!(all.ok(), reps.ok(), "verdicts must agree under {bug:?}");
        assert_eq!(all.ok(), expect_clean, "expected verdict under {bug:?}");
    }
}

#[test]
fn abandoned_waiter_counterexample_documents_the_abandon_step() {
    // The replay grammar cannot force a timeout, so the abandon step must at
    // least be preserved in the exported comment trace for human diagnosis.
    let outcome = orphaned_grant_sweep(2, BugSwitch::OrphanedGrantWedge);
    let (scenario, cx) = outcome.failure.expect("n=2 already exhibits the wedge");
    let text = export_replay(&scenario, &cx).expect("export");
    assert!(
        text.lines()
            .any(|l| l.starts_with('#') && l.contains("abandon")),
        "abandon step missing from the comment trace:\n{text}"
    );
}
