//! Multi-process integration tests for the cluster tier: every "node" here is
//! a real `arrowd` OS process, spawned from the binary Cargo built for this
//! crate, speaking the arrow protocol over TCP to its peer processes. The
//! multi-process analogue of `tests/net_integration.rs`.

use arrow_cluster::{Cluster, ClusterConfig, WorkOutcome};
use arrow_core::prelude::ObjectId;
use netgraph::{generators, NodeId, RootedTree};
use std::time::Duration;

fn arrowd() -> &'static str {
    env!("CARGO_BIN_EXE_arrowd")
}

fn tree(n: usize) -> RootedTree {
    RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0)
}

/// A Zipf-flavored per-(node, object) workload over `k` objects: object `o`
/// (popularity rank `o`) gets `⌈base / (o + 1)⌉` acquires per node, so the
/// hottest object sees `k`× the traffic of the coldest — contention is
/// concentrated the way directory workloads actually are.
fn zipf_work(n: usize, k: usize, base: usize) -> Vec<(NodeId, ObjectId, usize)> {
    let mut work = Vec::new();
    for v in 0..n {
        for o in 0..k {
            work.push((v, ObjectId(o as u32), base.div_ceil(o + 1)));
        }
    }
    work
}

#[test]
fn eight_process_zipf_workload_validates_every_object_order() {
    let n = 8;
    let k = 4;
    let cfg = ClusterConfig::new(arrowd(), tree(n), k);
    let mut cluster = Cluster::launch(cfg).expect("cluster launches");
    assert_eq!(cluster.node_count(), n);

    let work = zipf_work(n, k, 6); // 6+3+2+2 = 13 acquires per node
    let total: usize = work.iter().map(|&(_, _, c)| c).sum();
    cluster
        .start_workload(&work, Duration::from_secs(30), 1)
        .expect("workload starts");
    let mut usage_seen = 0;
    for (_, u) in cluster.scrape_usage() {
        assert!(u.rss_kb > 0, "live daemons have resident memory");
        usage_seen += 1;
    }
    assert_eq!(usage_seen, n, "every daemon's /proc entry is scrapable");
    for (v, outcome) in cluster.await_done(Duration::from_secs(120)) {
        assert_eq!(
            outcome,
            WorkOutcome::Done {
                completed: work
                    .iter()
                    .filter(|&&(node, _, _)| node == v)
                    .map(|&(_, _, c)| c)
                    .sum::<usize>() as u64,
                failed: 0,
                first_failed_obj: None,
            },
            "node {v} completed its whole assignment"
        );
    }

    let report = cluster.shutdown().expect("graceful shutdown");
    assert!(report.failures().is_empty(), "healthy cluster");
    assert_eq!(
        report.schedule().len(),
        total,
        "every acquire was journaled"
    );

    // The core contract: every per-object queuing order, assembled across
    // eight process-local journals, forms one unbroken chain.
    let orders = report.validated_orders().expect("orders validate");
    assert_eq!(orders.len(), k, "every object saw traffic");
    let ordered: usize = orders.iter().map(|(_, o)| o.len()).sum();
    assert_eq!(ordered, total);
    // The hottest object carries the most requests (Zipf shape survived).
    assert_eq!(orders[0].1.len(), n * 6);

    // Per-process accounting made it into the report.
    assert_eq!(
        report.metrics().get(arrow_trace::Metric::Acquisitions),
        total as u64
    );
    for node_report in report.per_node() {
        let journal = node_report.journal.as_ref().expect("journal flushed");
        assert_eq!(journal.node, node_report.node);
        assert!(node_report.usage.is_some(), "usage scraped before teardown");
    }
}

#[test]
fn sigkill_and_restart_heal_through_epoch_token_regeneration() {
    // Process-granularity churn: a non-root daemon is SIGKILLed mid-run — a
    // real dead PID, its journal and volatile protocol state gone — the
    // harness broadcasts the detection epoch, restarts the daemon, and the
    // cluster must converge with the churn order contract intact.
    let n = 8;
    let k = 2;
    let victim: NodeId = 5;
    let cfg = ClusterConfig::new(arrowd(), tree(n), k).with_fault_tolerance();
    let mut cluster = Cluster::launch(cfg).expect("cluster launches");

    let work: Vec<(NodeId, ObjectId, usize)> =
        (0..n).map(|v| (v, ObjectId((v % k) as u32), 3)).collect();
    cluster
        .start_workload(&work, Duration::from_secs(1), 200)
        .expect("workload starts");

    // Let traffic build, then kill the victim process outright.
    std::thread::sleep(Duration::from_millis(150));
    cluster.kill(victim).expect("SIGKILL lands");
    cluster
        .broadcast_epoch(1)
        .expect("detection bump reaches survivors");
    cluster
        .restart(victim)
        .expect("victim restarts and rejoins");
    assert_eq!(cluster.epoch(), 1);

    for (v, outcome) in cluster.await_done(Duration::from_secs(120)) {
        if v == victim {
            // The victim's workload died with its first incarnation; the
            // restarted process was never assigned work.
            assert!(
                matches!(outcome, WorkOutcome::Idle | WorkOutcome::Dead),
                "victim owes no done line, got {outcome:?}"
            );
        } else {
            assert!(
                matches!(outcome, WorkOutcome::Done { failed: 0, .. }),
                "survivor {v} must complete through the churn, got {outcome:?}"
            );
        }
    }

    let report = cluster.shutdown().expect("graceful shutdown");
    // The churn contract across real process boundaries: per-epoch chains are
    // fork-free and the final epoch forms one complete chain per object.
    report
        .validate_churn(1)
        .expect("churn order contract holds across the kill/restart cycle");
    // Survivors' acquires all completed and were journaled.
    let survivor_acquires: usize = work
        .iter()
        .filter(|&&(v, _, _)| v != victim)
        .map(|&(_, _, c)| c)
        .sum();
    assert!(
        report.schedule().len() >= survivor_acquires,
        "at least the survivors' {survivor_acquires} acquires are in the assembled schedule"
    );
    // The restarted incarnation flushed a journal at shutdown.
    assert!(
        report.per_node()[victim].journal.is_some(),
        "restarted victim journaled its second incarnation"
    );
}

#[test]
fn sigterm_flushes_journals_and_loses_no_order_records() {
    // Regression for the graceful-termination path: SIGTERM (not the control
    // channel) must drain the mesh and flush every journal, so the assembled
    // per-object orders account for every acquire that was granted.
    let n = 4;
    let k = 2;
    let cfg = ClusterConfig::new(arrowd(), tree(n), k);
    let mut cluster = Cluster::launch(cfg).expect("cluster launches");

    let work: Vec<(NodeId, ObjectId, usize)> = (0..n)
        .flat_map(|v| (0..k).map(move |o| (v, ObjectId(o as u32), 2)))
        .collect();
    let total: usize = work.iter().map(|&(_, _, c)| c).sum();
    cluster
        .start_workload(&work, Duration::from_secs(30), 1)
        .expect("workload starts");
    for (v, outcome) in cluster.await_done(Duration::from_secs(60)) {
        assert!(
            matches!(outcome, WorkOutcome::Done { failed: 0, .. }),
            "node {v}: {outcome:?}"
        );
    }

    // Tear down by signal alone.
    let report = cluster.terminate().expect("SIGTERM teardown");
    let orders = report.validated_orders().expect("orders validate");
    let ordered: usize = orders.iter().map(|(_, o)| o.len()).sum();
    assert_eq!(
        ordered, total,
        "no order record may be lost on graceful termination"
    );
    assert_eq!(report.schedule().len(), total);
    for node_report in report.per_node() {
        assert!(
            node_report.journal.is_some(),
            "node {} flushed its journal on SIGTERM",
            node_report.node
        );
    }
}
