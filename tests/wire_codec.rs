//! Seeded property tests for the arrow-net wire codec: encode/decode roundtrips
//! over randomized frames (every variant, extreme ids), plus rejection of
//! truncated, length-tampered and corrupted frames.
//!
//! Deterministic seeded case loops stand in for proptest (no registry in the
//! container), matching the style of `tests/property_tests.rs`.

use arrow_core::prelude::{ObjectId, ProtoMsg, RequestId};
use arrow_net::{Frame, WireError, WIRE_MAGIC};
use desim::SimRng;

/// Ids stressing the fixed-width encodings: zero (the root id), one, values around
/// the u32 boundary, and the extremes.
fn random_u64(rng: &mut SimRng) -> u64 {
    match rng.index(6) {
        0 => 0,
        1 => 1,
        2 => u32::MAX as u64,
        3 => u32::MAX as u64 + 1,
        4 => u64::MAX,
        _ => rng.uniform_u64(0, u64::MAX - 1),
    }
}

fn random_u32(rng: &mut SimRng) -> u32 {
    match rng.index(4) {
        0 => 0,
        1 => 1,
        2 => u32::MAX,
        _ => rng.uniform_u64(0, u32::MAX as u64) as u32,
    }
}

fn random_frame(rng: &mut SimRng) -> Frame {
    let req = RequestId(random_u64(rng));
    let obj = ObjectId(random_u32(rng));
    let pred = RequestId(random_u64(rng));
    let node = random_u32(rng) as usize;
    let epoch = random_u64(rng);
    match rng.index(10) {
        0 => Frame::Hello { node },
        1 => Frame::Welcome { node },
        2 => Frame::Goodbye,
        3 => Frame::Proto(ProtoMsg::Issue { req, obj }),
        4 => Frame::Proto(ProtoMsg::Queue {
            req,
            obj,
            origin: node,
            epoch,
        }),
        5 => Frame::Proto(ProtoMsg::Found {
            req,
            obj,
            pred,
            epoch,
        }),
        6 => Frame::Proto(ProtoMsg::CentralEnqueue {
            req,
            obj,
            origin: node,
        }),
        7 => Frame::Proto(ProtoMsg::CentralReply { req, obj, pred }),
        8 => Frame::Proto(ProtoMsg::Epoch { epoch }),
        _ => Frame::Token { obj, req, epoch },
    }
}

#[test]
fn roundtrip_randomized_frames() {
    let mut rng = SimRng::new(0xC0DEC);
    for case in 0..2_000 {
        let frame = random_frame(&mut rng);
        let bytes = frame.encode();
        let (decoded, consumed) = Frame::decode(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: {frame:?} failed to decode: {e}"));
        assert_eq!(decoded, frame, "case {case}");
        assert_eq!(consumed, bytes.len(), "case {case}: partial consumption");
    }
}

#[test]
fn roundtrip_through_a_concatenated_stream() {
    // Frames written back to back decode in order from a single buffer, each
    // consuming exactly its own bytes.
    let mut rng = SimRng::new(0x57EA4);
    for _ in 0..50 {
        let frames: Vec<Frame> = (0..1 + rng.index(20))
            .map(|_| random_frame(&mut rng))
            .collect();
        let mut buf = Vec::new();
        for f in &frames {
            buf.extend_from_slice(&f.encode());
        }
        let mut offset = 0;
        for f in &frames {
            let (decoded, consumed) = Frame::decode(&buf[offset..]).unwrap();
            assert_eq!(decoded, *f);
            offset += consumed;
        }
        assert_eq!(offset, buf.len());
    }
}

#[test]
fn every_truncation_is_rejected() {
    let mut rng = SimRng::new(0x7123);
    for _ in 0..300 {
        let frame = random_frame(&mut rng);
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                Frame::decode(&bytes[..cut]).unwrap_err(),
                WireError::Truncated,
                "{frame:?} truncated to {cut}/{} bytes must be rejected",
                bytes.len()
            );
        }
    }
}

#[test]
fn every_length_prefix_tampering_is_rejected() {
    // On a buffer holding exactly one frame, any wrong length prefix must fail:
    // larger claims run off the buffer (or exceed MAX_FRAME_LEN), smaller claims
    // starve a fixed-width field or the header itself.
    let mut rng = SimRng::new(0x1E47);
    for _ in 0..100 {
        let frame = random_frame(&mut rng);
        let bytes = frame.encode();
        let correct = u32::from_le_bytes(bytes[..4].try_into().unwrap());
        for wrong in (0..=correct + 8).chain([arrow_net::MAX_FRAME_LEN + 1, u32::MAX]) {
            if wrong == correct {
                continue;
            }
            let mut tampered = bytes.clone();
            tampered[..4].copy_from_slice(&wrong.to_le_bytes());
            assert!(
                Frame::decode(&tampered).is_err(),
                "{frame:?} with length {wrong} (truth {correct}) must be rejected"
            );
        }
    }
}

#[test]
fn corrupted_headers_are_rejected_with_the_right_error() {
    let mut rng = SimRng::new(0xBAD);
    for _ in 0..300 {
        let frame = random_frame(&mut rng);
        let bytes = frame.encode();

        let mut bad_magic = bytes.clone();
        bad_magic[4] ^= 0x5A;
        assert_eq!(
            Frame::decode(&bad_magic).unwrap_err(),
            WireError::BadMagic(WIRE_MAGIC ^ 0x5A)
        );

        let mut bad_version = bytes.clone();
        bad_version[5] ^= 0x80;
        assert!(matches!(
            Frame::decode(&bad_version).unwrap_err(),
            WireError::UnsupportedVersion(_)
        ));

        let mut bad_kind = bytes.clone();
        bad_kind[6] = 0x7F; // no frame kind lives at 0x7F
        let err = Frame::decode(&bad_kind).unwrap_err();
        assert!(
            matches!(err, WireError::UnknownKind(0x7F)),
            "{frame:?}: {err:?}"
        );
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SimRng::new(0xFA22);
    for _ in 0..2_000 {
        let len = rng.index(40);
        let blob: Vec<u8> = (0..len).map(|_| rng.uniform_u64(0, 255) as u8).collect();
        // Must return cleanly (an error in practice — a random blob that parses is
        // astronomically unlikely but not unsound), never panic or over-read.
        if let Ok((_, consumed)) = Frame::decode(&blob) {
            assert!(consumed <= blob.len());
        }
    }
}

#[test]
fn stream_reader_rejects_mid_frame_eof() {
    let mut rng = SimRng::new(0xE0F1);
    for _ in 0..200 {
        let frame = random_frame(&mut rng);
        let bytes = frame.encode();
        for cut in 1..bytes.len() {
            let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
            assert_eq!(
                Frame::read_from(&mut cursor).unwrap_err(),
                WireError::Truncated
            );
        }
    }
}
