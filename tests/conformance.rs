//! Acceptance tests for the cross-tier conformance harness: the CI smoke sweep —
//! 32 seeded cases through all three execution tiers (simulator, thread runtime,
//! socket runtime) plus the centralized baseline, every invariant asserted — and
//! the replay/shrink machinery around it.

use arrow_conformance::{derive_spec, run_case, run_replay, ReplayCase, SweepOptions};

/// The ISSUE's acceptance criterion: ≥ 32 shrunk-size seeded cases across all
/// three tiers with every invariant asserted and zero violations.
#[test]
fn smoke_sweep_32_cases_across_all_three_tiers_is_violation_free() {
    let opts = SweepOptions::smoke();
    assert!(opts.cases >= 32);
    let report = arrow_conformance::run_sweep(&opts);
    assert!(
        report.all_passed(),
        "conformance violations: {:#?}",
        report.failures
    );
    assert_eq!(report.cases, 32);
    // All three tiers (plus the centralized differential reference) actually ran
    // on every case — a sweep that silently skipped a tier must not pass.
    for tier in ["sim", "sim-centralized", "thread", "net"] {
        let count = report
            .tier_counts
            .iter()
            .find(|(t, _)| t == tier)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert_eq!(count, 32, "tier {tier} ran {count}/32 cases");
    }
    assert!(report.total_requests >= 32 * 4, "cases were non-trivial");
}

/// The replay file of any sweep case is a faithful one-command repro: text out,
/// parse back, re-run, same verdict (pass, here).
#[test]
fn replay_files_roundtrip_and_rerun() {
    let mut opts = SweepOptions::smoke();
    opts.include_net = false; // keep this test socket-free; the sweep test covers net
    for i in [0usize, 7, 19] {
        let case = ReplayCase::generate(derive_spec(&opts, i));
        let text = case.to_replay_text();
        let (tiers, violations) = run_replay(&text, &opts).expect("replay parses");
        assert!(tiers.contains(&"sim".to_string()));
        assert!(tiers.contains(&"thread".to_string()));
        assert!(violations.is_empty(), "case {i}: {violations:?}");
    }
}

/// Shrinking a failing case drops requests and nodes while the failure keeps
/// reproducing (checked here with a synthetic predicate, so the test does not
/// depend on a real protocol bug existing).
#[test]
fn shrinker_minimizes_against_the_real_case_runner() {
    let opts = SweepOptions::smoke();
    let case = ReplayCase::generate(derive_spec(&opts, 3));
    assert!(case.requests.len() > 2);
    // Predicate: "fails" while at least 2 requests survive — the shrinker must
    // land on exactly 2 and still produce a runnable case.
    let shrunk = arrow_conformance::shrink(&case, |c| c.requests.len() >= 2);
    assert_eq!(shrunk.requests.len(), 2);
    let (_, violations) = run_case(&shrunk, &opts);
    assert!(violations.is_empty(), "{violations:?}");
}

/// Corrupt replay files are rejected with a line-accurate error, not a panic.
#[test]
fn corrupt_replay_files_error_cleanly() {
    let opts = SweepOptions::smoke();
    assert!(run_replay("", &opts).is_err());
    assert!(run_replay("arrow-conformance-replay v2\n", &opts).is_err());
    let err = run_replay("arrow-conformance-replay v1\nreq one two three\n", &opts).unwrap_err();
    assert!(err.contains("line 2"), "{err}");
}
