//! Property-based tests (proptest) over randomly generated topologies, spanning
//! trees and request schedules. These encode the paper's invariants as properties
//! that must hold on *every* generated instance, not just hand-picked examples.

use arrow_core::prelude::*;
use desim::SimTime;
use netgraph::spanning::build_spanning_tree;
use netgraph::{generators, DistanceMatrix, FiniteMetric, TreeMetric};
use proptest::prelude::*;
use queuing_analysis::cost::RequestSet;
use queuing_analysis::{check_nearest_neighbor, held_karp_path, mst_weight, nearest_neighbor_path};

/// A random connected topology described compactly so proptest can shrink it.
#[derive(Debug, Clone)]
enum Topology {
    Complete(usize),
    Grid(usize, usize),
    Cycle(usize),
    RandomTree(usize, u64),
    Geometric(usize, u64),
}

impl Topology {
    fn build(&self) -> netgraph::Graph {
        match *self {
            Topology::Complete(n) => generators::complete(n, 1.0),
            Topology::Grid(r, c) => generators::grid(r, c),
            Topology::Cycle(n) => generators::cycle(n),
            Topology::RandomTree(n, seed) => generators::random_tree(n, seed),
            Topology::Geometric(n, seed) => generators::random_geometric(n, 0.5, seed),
        }
    }
}

fn topology_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (4usize..20).prop_map(Topology::Complete),
        ((2usize..5), (2usize..5)).prop_map(|(r, c)| Topology::Grid(r, c)),
        (4usize..20).prop_map(Topology::Cycle),
        ((3usize..24), any::<u64>()).prop_map(|(n, s)| Topology::RandomTree(n, s)),
        ((4usize..16), any::<u64>()).prop_map(|(n, s)| Topology::Geometric(n, s)),
    ]
}

/// A schedule description: (node index modulo n, issue time in tenths of a unit).
fn schedule_strategy() -> impl Strategy<Value = Vec<(usize, u32)>> {
    proptest::collection::vec(((0usize..1000), (0u32..200)), 1..20)
}

fn make_schedule(raw: &[(usize, u32)], n: usize) -> RequestSchedule {
    let pairs: Vec<(usize, SimTime)> = raw
        .iter()
        .map(|&(v, t)| {
            (
                v % n,
                SimTime::from_subticks(t as u64 * desim::SUBTICKS_PER_UNIT / 10),
            )
        })
        .collect();
    RequestSchedule::from_pairs(&pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The arrow protocol always queues every request exactly once, in a valid chain
    /// from the root, and its synchronous cost equals the sum of tree distances
    /// between consecutive requests (equation (2)).
    #[test]
    fn arrow_always_produces_a_valid_order_with_the_predicted_cost(
        topo in topology_strategy(),
        raw in schedule_strategy(),
        tree_seed in 0u8..3,
    ) {
        let graph = topo.build();
        let n = graph.node_count();
        prop_assume!(n >= 2);
        let kind = match tree_seed {
            0 => SpanningTreeKind::ShortestPath,
            1 => SpanningTreeKind::MinimumWeight,
            _ => SpanningTreeKind::MinimumCommunication,
        };
        let tree = build_spanning_tree(&graph, 0, kind);
        let instance = Instance::new(graph, tree);
        let schedule = make_schedule(&raw, n);
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule.clone()),
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        // Valid order covering every request.
        prop_assert_eq!(outcome.order.len(), schedule.len());
        // Equation (2): cost = sum of tree distances along the order.
        let rs = RequestSet::new(&schedule, &instance.tree);
        let mut d_sum = 0.0;
        let mut prev = 0usize;
        for &id in outcome.order.order() {
            let i = rs.index_of(id).unwrap();
            d_sum += rs.d_tree(prev, i);
            prev = i;
        }
        // Tolerance: the simulator quantises time to sub-ticks (1e-6 of a unit), so
        // with fractional edge weights each hop can round by up to one sub-tick.
        let tolerance = 1e-3 + 1e-6 * d_sum.abs();
        prop_assert!((outcome.total_latency - d_sum).abs() < tolerance,
            "latency {} != distance sum {}", outcome.total_latency, d_sum);
    }

    /// Lemma 3.8 (one-shot / concurrent-burst case): with simultaneous requests the
    /// order is a nearest-neighbour TSP path under c_T (which then equals d_T).
    ///
    /// The fully dynamic randomized version of this property (arbitrary fractional
    /// issue times) occasionally finds executions whose order deviates from the
    /// strict c_T-nearest-neighbour path when a request is issued while another
    /// request's queue() message is mid-flight on the same tree path; the
    /// deterministic staggered-time cases of `tests/analysis_integration.rs`
    /// (`lemma_3_8_nearest_neighbor_characterisation`) cover the dynamic setting, and
    /// the discrepancy on random fractional-time instances is recorded as an open
    /// investigation item in EXPERIMENTS.md (E6).
    #[test]
    fn arrow_order_is_a_nearest_neighbor_path_for_concurrent_bursts(
        origins in proptest::collection::vec(0usize..1000, 2..16),
        n in 4usize..20,
    ) {
        let graph = generators::random_tree(n, n as u64 * 31 + 7);
        let instance = Instance::tree_only(&graph, 0);
        let nodes: Vec<usize> = origins.iter().map(|&v| v % n).collect();
        let schedule = workload::one_shot_burst(&nodes, SimTime::ZERO);
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule.clone()),
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        let rs = RequestSet::new(&schedule, &instance.tree);
        let order: Vec<usize> = outcome.order.order().iter()
            .map(|&id| rs.index_of(id).unwrap())
            .collect();
        let violation = check_nearest_neighbor(&rs, &order, RequestSet::cost_t, 1e-6);
        prop_assert!(violation.is_none(), "NN violation: {violation:?}, order {order:?}");
    }

    /// The cost measures satisfy the inequalities the analysis relies on:
    /// 0 <= c_T <= c_M, c_O <= c_M, c_O >= d_T / 1, and c_Opt <= c_O.
    #[test]
    fn cost_measure_inequalities(
        raw in schedule_strategy(),
        n in 4usize..16,
    ) {
        let graph = generators::erdos_renyi_connected(n, 0.3, n as u64);
        let tree = build_spanning_tree(&graph, 0, SpanningTreeKind::ShortestPath);
        let schedule = make_schedule(&raw, n);
        let rs = RequestSet::with_graph_distances(
            &schedule,
            &tree,
            Some(DistanceMatrix::new(&graph)),
        );
        for i in 0..rs.len() {
            for j in 0..rs.len() {
                let ct = rs.cost_t(i, j);
                let cm = rs.cost_manhattan(i, j);
                let co = rs.cost_o(i, j);
                let copt = rs.cost_opt(i, j);
                prop_assert!(ct >= 0.0, "Fact 3.6 violated");
                prop_assert!(ct <= cm + 1e-9, "c_T > c_M");
                prop_assert!(co <= cm + 1e-9, "c_O > c_M");
                prop_assert!(copt <= co + 1e-9, "c_Opt > c_O (d_G > d_T?)");
                // Equation (8) in Lemma 3.15: c_O >= (d_T + max{0, t_i - t_j}) / 2.
                let dt_plus_wait =
                    rs.d_tree(i, j) + (rs.time(i) - rs.time(j)).max(0.0);
                prop_assert!(2.0 * co + 1e-9 >= dt_plus_wait, "equation (8) violated");
            }
        }
    }

    /// Spanning-tree facts: stretch is at least 1, the tree metric dominates the graph
    /// metric, and the tree metric satisfies the metric axioms.
    #[test]
    fn spanning_tree_stretch_and_metric_axioms(
        topo in topology_strategy(),
    ) {
        let graph = topo.build();
        prop_assume!(graph.node_count() >= 2);
        let tree = build_spanning_tree(&graph, 0, SpanningTreeKind::ShortestPath);
        let report = netgraph::stretch(&graph, &tree);
        prop_assert!(report.max_stretch >= 1.0 - 1e-9);
        prop_assert!(report.avg_stretch >= 1.0 - 1e-9);
        prop_assert!(report.avg_stretch <= report.max_stretch + 1e-9);
        prop_assert!(report.tree_diameter + 1e-9 >= report.graph_diameter);
        let tm = TreeMetric::new(&tree);
        prop_assert!(netgraph::check_metric_axioms(&tm, 1e-6).is_empty());
        let dm = DistanceMatrix::new(&graph);
        for u in 0..graph.node_count() {
            for v in 0..graph.node_count() {
                prop_assert!(tm.dist(u, v) + 1e-9 >= dm.dist(u, v));
            }
        }
    }

    /// TSP bound chain: MST <= Held-Karp optimum <= nearest-neighbour path cost, all
    /// under the Manhattan metric.
    #[test]
    fn tsp_bound_chain(
        raw in proptest::collection::vec(((0usize..1000), (0u32..100)), 1..10),
        n in 4usize..16,
    ) {
        let graph = generators::random_tree(n, 17 * n as u64 + 3);
        let tree = netgraph::RootedTree::from_tree_graph(&graph, 0);
        let schedule = make_schedule(&raw, n);
        let rs = RequestSet::new(&schedule, &tree);
        let mst = mst_weight(&rs, RequestSet::cost_manhattan);
        let (opt, _) = held_karp_path(&rs, RequestSet::cost_manhattan);
        let nn_order = nearest_neighbor_path(&rs, RequestSet::cost_manhattan);
        let nn_cost = {
            let mut total = 0.0;
            let mut prev = 0;
            for &i in &nn_order { total += rs.cost_manhattan(prev, i); prev = i; }
            total
        };
        prop_assert!(mst <= opt + 1e-9, "MST {mst} > OPT {opt}");
        prop_assert!(opt <= nn_cost + 1e-9, "OPT {opt} > NN {nn_cost}");
    }

    /// Time compression (Lemma 3.11) never increases the exact optimal cost and keeps
    /// the schedule size unchanged.
    #[test]
    fn compression_is_sound(
        raw in proptest::collection::vec(((0usize..1000), (0u32..400)), 1..10),
        n in 4usize..12,
    ) {
        let graph = generators::random_tree(n, 5 * n as u64 + 1);
        let tree = netgraph::RootedTree::from_tree_graph(&graph, 0);
        let schedule = make_schedule(&raw, n);
        let compressed = queuing_analysis::compress_schedule(&schedule, &tree);
        prop_assert_eq!(compressed.len(), schedule.len());
        prop_assert!(queuing_analysis::is_compressed(&compressed, &tree));
        let before = queuing_analysis::optimal::exact_optimal_cost(
            &RequestSet::new(&schedule, &tree)).value;
        let after = queuing_analysis::optimal::exact_optimal_cost(
            &RequestSet::new(&compressed, &tree)).value;
        prop_assert!(after <= before + 1e-6, "compression increased Opt {before} -> {after}");
    }
}
