//! Property-based tests over randomly generated topologies, spanning trees and
//! request schedules. These encode the paper's invariants as properties that must
//! hold on *every* generated instance, not just hand-picked examples.
//!
//! Cases are generated from a deterministic seeded PRNG (no external property-testing
//! framework, which is unavailable offline), so every run exercises the exact same
//! instance set and failures are reproducible from the printed case number alone.

use arrow_core::prelude::*;
use desim::{SimRng, SimTime};
use netgraph::spanning::build_spanning_tree;
use netgraph::{generators, DistanceMatrix, FiniteMetric, TreeMetric};
use queuing_analysis::cost::RequestSet;
use queuing_analysis::{check_nearest_neighbor, held_karp_path, mst_weight, nearest_neighbor_path};

const CASES: u64 = 48;

/// A random connected topology, chosen deterministically from the case seed.
fn random_topology(rng: &mut SimRng) -> netgraph::Graph {
    match rng.index(5) {
        0 => generators::complete(4 + rng.index(16), 1.0),
        1 => generators::grid(2 + rng.index(3), 2 + rng.index(3)),
        2 => generators::cycle(4 + rng.index(16)),
        3 => generators::random_tree(3 + rng.index(21), rng.uniform_u64(0, u64::MAX - 1)),
        _ => generators::random_geometric(4 + rng.index(12), 0.5, rng.uniform_u64(0, u64::MAX - 1)),
    }
}

/// A random schedule of 1..20 requests with issue times in tenths of a unit.
fn random_schedule(rng: &mut SimRng, n: usize, max_tenths: u64) -> RequestSchedule {
    let count = 1 + rng.index(19);
    let pairs: Vec<(usize, SimTime)> = (0..count)
        .map(|_| {
            (
                rng.index(n),
                SimTime::from_subticks(
                    rng.uniform_u64(0, max_tenths) * desim::SUBTICKS_PER_UNIT / 10,
                ),
            )
        })
        .collect();
    RequestSchedule::from_pairs(&pairs)
}

/// The arrow protocol always queues every request exactly once, in a valid chain
/// from the root, and its synchronous cost equals the sum of tree distances
/// between consecutive requests (equation (2)).
#[test]
fn arrow_always_produces_a_valid_order_with_the_predicted_cost() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0xA110 + case);
        let graph = random_topology(&mut rng);
        let n = graph.node_count();
        if n < 2 {
            continue;
        }
        let kind = match case % 3 {
            0 => SpanningTreeKind::ShortestPath,
            1 => SpanningTreeKind::MinimumWeight,
            _ => SpanningTreeKind::MinimumCommunication,
        };
        let tree = build_spanning_tree(&graph, 0, kind);
        let instance = Instance::new(graph, tree);
        let schedule = random_schedule(&mut rng, n, 200);
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule.clone()),
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        // Valid order covering every request.
        assert_eq!(outcome.order.len(), schedule.len(), "case {case}");
        // Equation (2): cost = sum of tree distances along the order.
        let rs = RequestSet::new(&schedule, instance.tree());
        let mut d_sum = 0.0;
        let mut prev = 0usize;
        for &id in outcome.order.order() {
            let i = rs.index_of(id).unwrap();
            d_sum += rs.d_tree(prev, i);
            prev = i;
        }
        // Tolerance: the simulator quantises time to sub-ticks (1e-6 of a unit), so
        // with fractional edge weights each hop can round by up to one sub-tick.
        let tolerance = 1e-3 + 1e-6 * d_sum.abs();
        assert!(
            (outcome.total_latency - d_sum).abs() < tolerance,
            "case {case}: latency {} != distance sum {}",
            outcome.total_latency,
            d_sum
        );
    }
}

/// Lemma 3.8 (one-shot / concurrent-burst case): with simultaneous requests the
/// order is a nearest-neighbour TSP path under c_T (which then equals d_T).
///
/// The fully dynamic version of this property (arbitrary fractional issue times)
/// occasionally finds executions whose order deviates from the strict
/// c_T-nearest-neighbour path when a request is issued while another request's
/// queue() message is mid-flight on the same tree path; the deterministic
/// staggered-time cases of `tests/analysis_integration.rs` cover the dynamic setting.
#[test]
fn arrow_order_is_a_nearest_neighbor_path_for_concurrent_bursts() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0xB42 + case);
        let n = 4 + rng.index(16);
        let graph = generators::random_tree(n, n as u64 * 31 + 7);
        let instance = Instance::tree_only(graph, 0);
        let count = 2 + rng.index(14);
        let nodes: Vec<usize> = (0..count).map(|_| rng.index(n)).collect();
        let schedule = workload::one_shot_burst(&nodes, SimTime::ZERO);
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule.clone()),
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        let rs = RequestSet::new(&schedule, instance.tree());
        let order: Vec<usize> = outcome
            .order
            .order()
            .iter()
            .map(|&id| rs.index_of(id).unwrap())
            .collect();
        let violation = check_nearest_neighbor(&rs, &order, RequestSet::cost_t, 1e-6);
        assert!(
            violation.is_none(),
            "case {case}: NN violation: {violation:?}, order {order:?}"
        );
    }
}

/// The cost measures satisfy the inequalities the analysis relies on:
/// 0 <= c_T <= c_M, c_O <= c_M, and c_Opt <= c_O.
#[test]
fn cost_measure_inequalities() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0xC057 + case);
        let n = 4 + rng.index(12);
        let graph = generators::erdos_renyi_connected(n, 0.3, n as u64);
        let tree = build_spanning_tree(&graph, 0, SpanningTreeKind::ShortestPath);
        let schedule = random_schedule(&mut rng, n, 200);
        let rs = RequestSet::with_graph_distances(
            &schedule,
            &tree,
            Some(DistanceMatrix::shared(&graph)),
        );
        for i in 0..rs.len() {
            for j in 0..rs.len() {
                let ct = rs.cost_t(i, j);
                let cm = rs.cost_manhattan(i, j);
                let co = rs.cost_o(i, j);
                let copt = rs.cost_opt(i, j);
                assert!(ct >= 0.0, "case {case}: Fact 3.6 violated");
                assert!(ct <= cm + 1e-9, "case {case}: c_T > c_M");
                assert!(co <= cm + 1e-9, "case {case}: c_O > c_M");
                assert!(copt <= co + 1e-9, "case {case}: c_Opt > c_O (d_G > d_T?)");
                // Equation (8) in Lemma 3.15: c_O >= (d_T + max{0, t_i - t_j}) / 2.
                let dt_plus_wait = rs.d_tree(i, j) + (rs.time(i) - rs.time(j)).max(0.0);
                assert!(
                    2.0 * co + 1e-9 >= dt_plus_wait,
                    "case {case}: equation (8) violated"
                );
            }
        }
    }
}

/// Spanning-tree facts: stretch is at least 1, the tree metric dominates the graph
/// metric, and the tree metric satisfies the metric axioms.
#[test]
fn spanning_tree_stretch_and_metric_axioms() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x57E7 + case);
        let graph = random_topology(&mut rng);
        if graph.node_count() < 2 {
            continue;
        }
        let tree = build_spanning_tree(&graph, 0, SpanningTreeKind::ShortestPath);
        let report = netgraph::stretch(&graph, &tree);
        assert!(report.max_stretch >= 1.0 - 1e-9, "case {case}");
        assert!(report.avg_stretch >= 1.0 - 1e-9, "case {case}");
        assert!(
            report.avg_stretch <= report.max_stretch + 1e-9,
            "case {case}"
        );
        assert!(
            report.tree_diameter + 1e-9 >= report.graph_diameter,
            "case {case}"
        );
        let tm = TreeMetric::new(&tree);
        assert!(
            netgraph::check_metric_axioms(&tm, 1e-6).is_empty(),
            "case {case}"
        );
        let dm = DistanceMatrix::new(&graph);
        for u in 0..graph.node_count() {
            for v in 0..graph.node_count() {
                assert!(tm.dist(u, v) + 1e-9 >= dm.dist(u, v), "case {case}");
            }
        }
    }
}

/// TSP bound chain: MST <= Held-Karp optimum <= nearest-neighbour path cost, all
/// under the Manhattan metric.
#[test]
fn tsp_bound_chain() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x75B + case);
        let n = 4 + rng.index(12);
        let graph = generators::random_tree(n, 17 * n as u64 + 3);
        let tree = netgraph::RootedTree::from_tree_graph(&graph, 0);
        let count = 1 + rng.index(9);
        let pairs: Vec<(usize, SimTime)> = (0..count)
            .map(|_| {
                (
                    rng.index(n),
                    SimTime::from_subticks(rng.uniform_u64(0, 100) * desim::SUBTICKS_PER_UNIT / 10),
                )
            })
            .collect();
        let schedule = RequestSchedule::from_pairs(&pairs);
        let rs = RequestSet::new(&schedule, &tree);
        let mst = mst_weight(&rs, RequestSet::cost_manhattan);
        let (opt, _) = held_karp_path(&rs, RequestSet::cost_manhattan);
        let nn_order = nearest_neighbor_path(&rs, RequestSet::cost_manhattan);
        let nn_cost = {
            let mut total = 0.0;
            let mut prev = 0;
            for &i in &nn_order {
                total += rs.cost_manhattan(prev, i);
                prev = i;
            }
            total
        };
        assert!(mst <= opt + 1e-9, "case {case}: MST {mst} > OPT {opt}");
        assert!(
            opt <= nn_cost + 1e-9,
            "case {case}: OPT {opt} > NN {nn_cost}"
        );
    }
}

/// Time compression (Lemma 3.11) never increases the exact optimal cost and keeps
/// the schedule size unchanged.
#[test]
fn compression_is_sound() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0xC03F + case);
        let n = 4 + rng.index(8);
        let graph = generators::random_tree(n, 5 * n as u64 + 1);
        let tree = netgraph::RootedTree::from_tree_graph(&graph, 0);
        let count = 1 + rng.index(9);
        let pairs: Vec<(usize, SimTime)> = (0..count)
            .map(|_| {
                (
                    rng.index(n),
                    SimTime::from_subticks(rng.uniform_u64(0, 400) * desim::SUBTICKS_PER_UNIT / 10),
                )
            })
            .collect();
        let schedule = RequestSchedule::from_pairs(&pairs);
        let compressed = queuing_analysis::compress_schedule(&schedule, &tree);
        assert_eq!(compressed.len(), schedule.len(), "case {case}");
        assert!(
            queuing_analysis::is_compressed(&compressed, &tree),
            "case {case}"
        );
        let before =
            queuing_analysis::optimal::exact_optimal_cost(&RequestSet::new(&schedule, &tree)).value;
        let after =
            queuing_analysis::optimal::exact_optimal_cost(&RequestSet::new(&compressed, &tree))
                .value;
        assert!(
            after <= before + 1e-6,
            "case {case}: compression increased Opt {before} -> {after}"
        );
    }
}
