//! Smoke tests for the experiment harness: every figure-reproduction entry point runs
//! end to end at a reduced scale and produces sane, non-degenerate output. (The full
//! sweeps are exercised by the binaries and Criterion benches.)

use arrow_bench::{async_vs_sync, figure_10, figure_11, figure_9, ratio_sweep, Table};

#[test]
fn figure_10_small_sweep_produces_monotone_system_sizes() {
    let rows = figure_10(&[2, 4, 8], 20, 0.2);
    assert_eq!(rows.len(), 3);
    for w in rows.windows(2) {
        assert!(w[0].processors < w[1].processors);
    }
    for row in &rows {
        assert!(row.arrow_makespan > 0.0);
        assert!(row.centralized_makespan > 0.0);
        assert!(row.arrow_mean_latency >= 0.0);
    }
}

#[test]
fn figure_11_hops_are_nonnegative_and_finite() {
    let rows = figure_11(&[2, 8], 20, 0.2);
    for row in &rows {
        assert!(row.arrow_hops_per_request.is_finite());
        assert!(row.arrow_hops_per_request >= 0.0);
        assert!(row.centralized_hops_per_request <= 2.0 + 1e-9);
    }
}

#[test]
fn figure_9_small_instances_work() {
    let rows = figure_9(&[16]);
    assert_eq!(rows.len(), 1);
    assert!(rows[0].ratio >= 1.0);
    assert!(rows[0].requests > 10);
}

#[test]
fn ratio_sweep_and_async_comparison_run() {
    let rows = ratio_sweep(9, 12, 7);
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.report.certifies_bound()));

    let sync_async = async_vs_sync(6, 10, &[3]);
    assert_eq!(sync_async.len(), 1);
}

#[test]
fn tables_render_experiment_rows() {
    let rows = figure_10(&[2, 4], 10, 0.2);
    let mut table = Table::new(&["n", "arrow", "central"]);
    for r in &rows {
        table.push(vec![
            r.processors.to_string(),
            format!("{:.2}", r.arrow_makespan),
            format!("{:.2}", r.centralized_makespan),
        ]);
    }
    let rendered = table.render();
    assert!(rendered.contains("arrow"));
    assert!(rendered.lines().count() >= 4);
}
