//! Integration tests that check the paper's *lemmas* against actual protocol
//! executions: the nearest-neighbour characterisation (Lemma 3.8), the cost identity
//! of equation (2)/Lemma 3.10, the ordering property of Lemma 3.9, and the
//! relationship between arrow's cost and the optimal lower bounds.

use arrow_core::prelude::*;
use desim::SimTime;
use netgraph::generators;
use queuing_analysis::cost::RequestSet;
use queuing_analysis::{check_nearest_neighbor, measure_ratio};

fn arrow_order_as_indices(outcome: &QueuingOutcome, rs: &RequestSet) -> Vec<usize> {
    outcome
        .order
        .order()
        .iter()
        .map(|&id| rs.index_of(id).expect("request id present in the set"))
        .collect()
}

/// Lemma 3.8: arrow's queuing order is a nearest-neighbour TSP path under `c_T`,
/// starting from the root request — verified on many synchronous executions.
#[test]
fn lemma_3_8_nearest_neighbor_characterisation() {
    let cases: Vec<(Instance, RequestSchedule)> = vec![
        // One-shot burst on the complete graph + binary tree.
        {
            let instance = Instance::complete_uniform(10, SpanningTreeKind::BalancedBinary);
            let s = workload::one_shot_burst(&(0..10).collect::<Vec<_>>(), SimTime::ZERO);
            (instance, s)
        },
        // Staggered requests on a path (G = T).
        {
            let instance = Instance::tree_only(generators::path(16), 0);
            let s = RequestSchedule::from_pairs(&[
                (15, SimTime::ZERO),
                (3, SimTime::from_units(1)),
                (9, SimTime::from_units(2)),
                (12, SimTime::from_units(4)),
                (1, SimTime::from_units(7)),
            ]);
            (instance, s)
        },
        // Random workload on a grid with an MST.
        {
            let graph = generators::grid(4, 4);
            let tree = netgraph::spanning::build_spanning_tree(
                &graph,
                0,
                netgraph::SpanningTreeKind::MinimumWeight,
            );
            let instance = Instance::new(graph, tree);
            let s = workload::uniform_random(16, 20, 10.0, 13);
            (instance, s)
        },
    ];
    for (i, (instance, schedule)) in cases.into_iter().enumerate() {
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule.clone()),
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        let rs = RequestSet::new(&schedule, instance.tree());
        let order = arrow_order_as_indices(&outcome, &rs);
        // Ties in c_T can legitimately be broken either way, so allow a tolerance of
        // one sub-tick-rounded unit step.
        let violation = check_nearest_neighbor(&rs, &order, RequestSet::cost_t, 1e-6);
        assert!(
            violation.is_none(),
            "case {i}: arrow's order is not a NN path: {violation:?}"
        );
    }
}

/// Equation (2) / Lemma 3.10: in the synchronous model, arrow's total latency equals
/// the sum of tree distances between consecutive requests in arrow's order, which
/// also equals `C_T - t_last` where `C_T` sums `c_T` along the order.
#[test]
fn lemma_3_10_cost_identity() {
    let instance = Instance::complete_uniform(12, SpanningTreeKind::BalancedBinary);
    let schedule = workload::uniform_random(12, 30, 20.0, 21);
    let outcome = run(
        &instance,
        &Workload::OpenLoop(schedule.clone()),
        &RunConfig::analysis(ProtocolKind::Arrow),
    );
    let rs = RequestSet::new(&schedule, instance.tree());
    let order = arrow_order_as_indices(&outcome, &rs);

    // Sum of tree distances along arrow's order (equation (2)).
    let mut d_sum = 0.0;
    let mut prev = 0usize;
    for &i in &order {
        d_sum += rs.d_tree(prev, i);
        prev = i;
    }
    assert!(
        (outcome.total_latency - d_sum).abs() < 1e-6,
        "measured latency {} != sum of tree distances {}",
        outcome.total_latency,
        d_sum
    );

    // C_T along arrow's order equals the distance sum plus the last issue time
    // (proof of Lemma 3.10).
    let mut c_t_sum = 0.0;
    let mut prev = 0usize;
    for &i in &order {
        c_t_sum += rs.cost_t(prev, i);
        prev = i;
    }
    let t_last_in_order = rs.time(*order.last().unwrap());
    assert!(
        (c_t_sum - (d_sum + t_last_in_order)).abs() < 1e-6,
        "C_T {} != distance sum {} + t_last {}",
        c_t_sum,
        d_sum,
        t_last_in_order
    );
}

/// Lemma 3.9: if `t_j - t_i > d_T(v_i, v_j)` then request `r_i` is ordered before
/// `r_j` by arrow.
#[test]
fn lemma_3_9_ordering_property() {
    let instance = Instance::tree_only(generators::balanced_binary_tree(15), 0);
    for seed in 0..5u64 {
        let schedule = workload::uniform_random(15, 25, 12.0, seed);
        let outcome = run(
            &instance,
            &Workload::OpenLoop(schedule.clone()),
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        // Position of each request in arrow's order.
        let pos: std::collections::HashMap<RequestId, usize> = outcome
            .order
            .order()
            .iter()
            .enumerate()
            .map(|(p, &id)| (id, p))
            .collect();
        for a in schedule.requests() {
            for b in schedule.requests() {
                if a.id == b.id {
                    continue;
                }
                let dt = instance.tree().distance(a.node, b.node);
                let gap = (b.time - a.time).as_units_f64();
                if gap > dt + 1e-9 {
                    assert!(
                        pos[&a.id] < pos[&b.id],
                        "seed {seed}: {:?} (t={}) should precede {:?} (t={}), d_T = {dt}",
                        a.id,
                        a.time,
                        b.id,
                        b.time
                    );
                }
            }
        }
    }
}

/// Fact 3.4 / equation (4): arrow's measured cost is always at least the certified
/// lower bound on the optimum (sanity of the whole measurement pipeline), and the
/// measured competitive ratio respects Theorem 3.19 on every instance tried.
#[test]
fn measured_ratios_bracket_correctly() {
    let instances = [
        Instance::complete_uniform(8, SpanningTreeKind::BalancedBinary),
        Instance::complete_uniform(8, SpanningTreeKind::Star),
        Instance::tree_only(generators::path(17), 0),
    ];
    for (i, instance) in instances.iter().enumerate() {
        let n = instance.node_count();
        for seed in 0..3u64 {
            let schedule = workload::uniform_random(n, 18, 10.0, seed);
            if schedule.is_empty() {
                continue;
            }
            let report = measure_ratio(
                instance,
                &schedule,
                &RunConfig::analysis(ProtocolKind::Arrow),
            );
            assert!(
                report.arrow_cost >= report.opt_lower_bound - 1e-6,
                "instance {i} seed {seed}: arrow {} below the optimal lower bound {}",
                report.arrow_cost,
                report.opt_lower_bound
            );
            assert!(
                report.certifies_bound(),
                "instance {i} seed {seed}: ratio {} exceeds the theorem bound {}",
                report.ratio,
                report.theorem_bound
            );
        }
    }
}

/// The lower-bound construction of Theorem 4.1 keeps the arrow protocol measurably
/// away from optimal (ratio well above 1) at every diameter, and never violates the
/// upper bound. (The Ω(log D / log log D) *growth* is an asymptotic statement about
/// adversarially tie-broken executions; at simulable diameters and with deterministic
/// tie-breaking the measured ratio sits in the 1.5–4 range — see EXPERIMENTS.md.)
#[test]
fn theorem_4_1_instances_force_a_nontrivial_ratio() {
    for (d, k) in [(16usize, 4usize), (64, 6), (128, 7)] {
        let (instance, schedule) = queuing_analysis::theorem_4_1_instance(d, k);
        let report = measure_ratio(
            &instance,
            &schedule,
            &RunConfig::analysis(ProtocolKind::Arrow),
        );
        assert!(
            report.ratio > 1.3,
            "D={d}, k={k}: ratio only {}",
            report.ratio
        );
        assert!(report.certifies_bound(), "D={d}: bound violated");
        // The instance really does make arrow pay super-constant extra work compared
        // with the purely spatial optimum (which is ~D).
        assert!(report.arrow_cost > 1.5 * d as f64);
    }
}
