//! Determinism regression tests.
//!
//! The simulator's contract is that a run is a pure function of
//! `(processes, config, seed, scheduled inputs)`: the same seed must produce a
//! byte-identical trace and outcome, and the rayon-parallel experiment sweeps must
//! produce exactly the rows their serial reference implementations do, in the same
//! order, regardless of thread count or scheduling.

use arrow_bench::experiments;
use arrow_core::prelude::*;
use desim::SimTime;

/// Same `RunConfig` seed => identical queuing order, costs and event counts across
/// two independent protocol runs, in both synchrony models. (Byte-identical *trace*
/// output is pinned by `raw_simulator_trace_is_reproducible_per_seed` below, which
/// drives the simulator directly — the harness does not expose its trace.)
#[test]
fn same_seed_produces_identical_outcome() {
    let run_once = |sync: bool| {
        let instance = Instance::complete_uniform(12, SpanningTreeKind::BalancedBinary);
        let schedule = workload::uniform_random(12, 60, 20.0, 7);
        let mut config = RunConfig::analysis(ProtocolKind::Arrow);
        if !sync {
            config = config.asynchronous(13);
        }
        let outcome = run(&instance, &Workload::OpenLoop(schedule), &config);
        (
            format!("{:?}", outcome.order.order()),
            outcome.total_latency,
            outcome.makespan,
            outcome.sim_events,
            outcome.protocol_messages,
        )
    };
    for sync in [true, false] {
        let a = run_once(sync);
        let b = run_once(sync);
        assert_eq!(a, b, "sync={sync}: identical seeds diverged");
    }
}

/// The raw simulator (one level below the harness): same seed => identical trace
/// text; different seed => allowed (and here, expected) to differ.
#[test]
fn raw_simulator_trace_is_reproducible_per_seed() {
    use desim::{Context, NodeId, Process, SimConfig, Simulator};

    #[derive(Debug)]
    struct Relay {
        n: usize,
    }
    impl Process<u32> for Relay {
        fn on_message(&mut self, ctx: &mut Context<u32>, _from: NodeId, hops: u32) {
            if hops > 0 {
                let next = (ctx.node() + 1) % self.n;
                ctx.send(next, hops - 1);
            }
        }
    }

    let render = |seed: u64| {
        let mut cfg = SimConfig::asynchronous(seed);
        cfg.trace = true;
        let nodes = (0..6).map(|_| Relay { n: 6 }).collect();
        let mut sim = Simulator::new(nodes, cfg);
        sim.schedule_external(SimTime::ZERO, 0, 40);
        let outcome = sim.run();
        (sim.trace().render(), outcome.events, outcome.final_time)
    };
    assert_eq!(render(42), render(42));
    assert_ne!(render(42).0, render(43).0);
}

/// Parallel sweeps return exactly the rows of the serial reference implementations,
/// in the same order.
#[test]
fn parallel_sweeps_match_serial_reference_rows() {
    assert_eq!(
        experiments::ratio_sweep(9, 16, 3),
        experiments::ratio_sweep_serial(9, 16, 3),
        "ratio_sweep parallel/serial mismatch"
    );
    assert_eq!(
        experiments::figure_9(&[16, 32]),
        experiments::figure_9_serial(&[16, 32]),
        "figure_9 parallel/serial mismatch"
    );
    assert_eq!(
        experiments::figure_10(&[2, 4, 8], 15, 0.2),
        experiments::figure_10_serial(&[2, 4, 8], 15, 0.2),
        "figure_10 parallel/serial mismatch"
    );
    assert_eq!(
        experiments::figure_11(&[2, 4, 8], 15, 0.2),
        experiments::figure_11_serial(&[2, 4, 8], 15, 0.2),
        "figure_11 parallel/serial mismatch"
    );
    assert_eq!(
        experiments::async_vs_sync(6, 12, &[1, 2, 3]),
        experiments::async_vs_sync_serial(6, 12, &[1, 2, 3]),
        "async_vs_sync parallel/serial mismatch"
    );
}

/// Repeated parallel sweeps are stable run-to-run (no dependence on thread timing).
#[test]
fn parallel_sweep_rows_are_stable_across_repeated_runs() {
    let a = experiments::ratio_sweep(9, 12, 5);
    let b = experiments::ratio_sweep(9, 12, 5);
    assert_eq!(a, b);
}
