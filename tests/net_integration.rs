//! Socket-tier integration tests: the arrow directory over real loopback TCP.
//!
//! The headline scenario is the ISSUE's acceptance case: a K = 4-object workload on
//! 32 nodes runs over real sockets and every per-object queuing order validates —
//! structurally (the same `QueuingOrder` contract the simulator harness enforces)
//! and against `queuing-analysis` (each order's tree path cost must dominate the
//! certified MST lower bound for that object's request set).

use arrow_core::prelude::*;
use arrow_net::{NetConfig, NetRuntime};
use desim::SimRng;
use netgraph::{generators, RootedTree};
use queuing_analysis::cost::RequestSet;
use queuing_analysis::tsp_bounds::mst_weight;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tree(n: usize) -> RootedTree {
    RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0)
}

/// Drive `workers_per_object` worker threads per object (at seeded-random nodes),
/// each performing `acquires` acquire/release rounds, then shut down and return the
/// report.
fn drive(
    rt: NetRuntime,
    objects: usize,
    workers_per_object: usize,
    acquires: usize,
    seed: u64,
) -> arrow_net::NetReport {
    let n = rt.node_count();
    let rt = Arc::new(rt);
    let mut rng = SimRng::new(seed);
    let mut joins = Vec::new();
    for obj in 0..objects {
        for _ in 0..workers_per_object {
            let node = rng.index(n);
            let h = rt.handle(node);
            joins.push(std::thread::spawn(move || {
                for _ in 0..acquires {
                    let req = h.acquire_object(ObjectId(obj as u32));
                    std::thread::yield_now();
                    h.release_object(ObjectId(obj as u32), req);
                }
            }));
        }
    }
    for j in joins {
        j.join().unwrap();
    }
    Arc::try_unwrap(rt).ok().unwrap().shutdown()
}

/// The acceptance scenario: K = 4 objects on 32 nodes over real loopback TCP.
/// Every per-object order must (a) validate as a queuing order over exactly that
/// object's requests and (b) satisfy the queuing-analysis spatial lower bound: the
/// order's tree path cost (sum of tree distances between consecutive requests,
/// starting at the root — arrow's cost measure `c_A`) is at least the tree-distance
/// MST weight of the object's request set, since any root-anchored visiting path
/// dominates an MST.
#[test]
fn k4_on_32_nodes_over_loopback_validates_via_queuing_analysis() {
    let n = 32;
    let k = 4;
    let t = tree(n);
    let rt = NetRuntime::spawn_multi(&t, k, NetConfig::instant());
    let report = drive(rt, k, 3, 5, 0xACCE);

    let schedule = report.schedule();
    assert_eq!(schedule.len(), k * 3 * 5, "every acquire was journaled");
    assert_eq!(report.stats().acquisitions as usize, schedule.len());
    assert_eq!(schedule.objects().len(), k, "all objects saw traffic");

    let orders = report
        .validated_orders()
        .expect("socket run produced an invalid queuing order");
    assert_eq!(orders.len(), k);

    let mut covered = 0;
    for (obj, order) in &orders {
        let sub = schedule.for_object(*obj);
        assert_eq!(order.len(), sub.len(), "object {obj}");
        for &id in order.order() {
            assert_eq!(schedule.get(id).unwrap().obj, *obj);
        }
        covered += order.len();

        // queuing-analysis cross-check.
        let rs = RequestSet::new(&sub, &t);
        let perm: Vec<usize> = order
            .order()
            .iter()
            .map(|&id| rs.index_of(id).expect("order id is in the sub-schedule"))
            .collect();
        let path = rs.path_cost(&perm, RequestSet::cost_arrow);
        let mst = mst_weight(&rs, RequestSet::cost_arrow);
        assert!(
            path >= mst - 1e-9,
            "object {obj}: socket order's tree path cost {path} undercuts the MST bound {mst}"
        );
    }
    assert_eq!(covered, schedule.len(), "orders partition the requests");
}

/// Sequential acquires (one in flight at a time) must be queued in issue order —
/// the same contract the simulator's centralized/sequential tests rely on.
#[test]
fn sequential_socket_acquires_queue_in_issue_order() {
    let rt = NetRuntime::spawn(&tree(15), NetConfig::instant());
    let sequence = [14usize, 3, 9, 0, 7];
    for &v in &sequence {
        let h = rt.handle(v);
        let req = h.acquire();
        h.release(req);
    }
    let report = rt.shutdown();
    let orders = report.validated_orders().unwrap();
    let order_nodes: Vec<usize> = orders[0]
        .1
        .order()
        .iter()
        .map(|&id| report.schedule().get(id).unwrap().node)
        .collect();
    assert_eq!(order_nodes, sequence);
}

/// Synchronous latency injection: on a two-node path with unit edge weight and a
/// 60 ms unit latency, a remote acquire needs one queue() hop and one token hop, so
/// it cannot complete in under ~120 ms. The instant config on the same topology
/// stays far below that — the difference is the injected delay, not socket cost.
#[test]
fn synchronous_latency_injection_delays_remote_acquires() {
    let t = RootedTree::from_tree_graph(&generators::path(2), 0);

    let unit = Duration::from_millis(60);
    let rt = NetRuntime::spawn(&t, NetConfig::synchronous(unit));
    let h = rt.handle(1);
    let start = Instant::now();
    let req = h.acquire();
    let delayed = start.elapsed();
    h.release(req);
    rt.shutdown();
    assert!(
        delayed >= Duration::from_millis(110),
        "two injected 60 ms hops finished in {delayed:?}"
    );

    let rt = NetRuntime::spawn(&t, NetConfig::instant());
    let h = rt.handle(1);
    let start = Instant::now();
    let req = h.acquire();
    let instant = start.elapsed();
    h.release(req);
    rt.shutdown();
    assert!(
        instant < Duration::from_millis(110),
        "undelayed loopback acquire took {instant:?}"
    );
}

/// The asynchronous model derived from a simulator RunConfig honors the async
/// floor: with `lo_factor = 0.9` every hop pays at least 90% of the link weight, so
/// a two-hop acquire pays at least ~2 × 0.9 × unit.
#[test]
fn async_floor_from_run_config_bounds_injected_latency_below() {
    let t = RootedTree::from_tree_graph(&generators::path(2), 0);
    let run = RunConfig::analysis(ProtocolKind::Arrow)
        .asynchronous(7)
        .with_async_floor(0.9);
    let unit = Duration::from_millis(60);
    let cfg = NetConfig::from_run_config(&run, unit);
    assert_eq!(cfg.jitter, Some((0.9, 7)));

    let rt = NetRuntime::spawn(&t, cfg);
    let h = rt.handle(1);
    let start = Instant::now();
    let req = h.acquire();
    let elapsed = start.elapsed();
    h.release(req);
    rt.shutdown();
    assert!(
        elapsed >= Duration::from_millis(100),
        "two hops floored at 54 ms each finished in {elapsed:?}"
    );
}

/// The mesh materializes the tree edges at bootstrap and only grows by the direct
/// token channels traffic actually needs — never the full n² mesh.
#[test]
fn mesh_stays_sparse() {
    let n = 32;
    let rt = NetRuntime::spawn_multi(&tree(n), 2, NetConfig::instant());
    let report = drive(rt, 2, 2, 4, 0x5BA2);
    let dialed = report.stats().connections_dialed;
    // n-1 tree edges, plus at most one direct channel per (granter, origin) pair
    // that actually exchanged a token; with 4 requester nodes that is far below n².
    assert!(
        dialed >= (n - 1) as u64,
        "tree edges materialized: {dialed}"
    );
    assert!(
        dialed < (n * n / 2) as u64,
        "mesh degenerated into all-pairs: {dialed} connections"
    );
    assert_eq!(report.stats().unexpected_frames, 0);
    report.validated_orders().unwrap();
}
