//! Socket-tier integration tests: the arrow directory over real loopback TCP.
//!
//! The headline scenario is the ISSUE's acceptance case: a K = 4-object workload on
//! 32 nodes runs over real sockets and every per-object queuing order validates —
//! structurally (the same `QueuingOrder` contract the simulator harness enforces)
//! and against `queuing-analysis` (each order's tree path cost must dominate the
//! certified MST lower bound for that object's request set).

use arrow_core::prelude::*;
use arrow_net::{NetConfig, NetRuntime};
use desim::SimRng;
use netgraph::{generators, RootedTree};
use queuing_analysis::cost::RequestSet;
use queuing_analysis::tsp_bounds::mst_weight;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tree(n: usize) -> RootedTree {
    RootedTree::from_tree_graph(&generators::balanced_binary_tree(n), 0)
}

/// Drive `workers_per_object` worker threads per object (at seeded-random nodes),
/// each performing `acquires` acquire/release rounds, then shut down and return the
/// report.
fn drive(
    rt: NetRuntime,
    objects: usize,
    workers_per_object: usize,
    acquires: usize,
    seed: u64,
) -> arrow_net::NetReport {
    let n = rt.node_count();
    let rt = Arc::new(rt);
    let mut rng = SimRng::new(seed);
    let mut joins = Vec::new();
    for obj in 0..objects {
        for _ in 0..workers_per_object {
            let node = rng.index(n);
            let h = rt.handle(node);
            joins.push(std::thread::spawn(move || {
                for _ in 0..acquires {
                    let req = h.acquire_object(ObjectId(obj as u32));
                    std::thread::yield_now();
                    h.release_object(ObjectId(obj as u32), req);
                }
            }));
        }
    }
    for j in joins {
        j.join().unwrap();
    }
    Arc::try_unwrap(rt).ok().unwrap().shutdown()
}

/// The acceptance scenario: K = 4 objects on 32 nodes over real loopback TCP.
/// Every per-object order must (a) validate as a queuing order over exactly that
/// object's requests and (b) satisfy the queuing-analysis spatial lower bound: the
/// order's tree path cost (sum of tree distances between consecutive requests,
/// starting at the root — arrow's cost measure `c_A`) is at least the tree-distance
/// MST weight of the object's request set, since any root-anchored visiting path
/// dominates an MST.
#[test]
fn k4_on_32_nodes_over_loopback_validates_via_queuing_analysis() {
    let n = 32;
    let k = 4;
    let t = tree(n);
    let rt = NetRuntime::spawn_multi(&t, k, NetConfig::instant());
    let report = drive(rt, k, 3, 5, 0xACCE);

    let schedule = report.schedule();
    assert_eq!(schedule.len(), k * 3 * 5, "every acquire was journaled");
    assert_eq!(report.stats().acquisitions as usize, schedule.len());
    assert_eq!(schedule.objects().len(), k, "all objects saw traffic");

    let orders = report
        .validated_orders()
        .expect("socket run produced an invalid queuing order");
    assert_eq!(orders.len(), k);

    let mut covered = 0;
    for (obj, order) in &orders {
        let sub = schedule.for_object(*obj);
        assert_eq!(order.len(), sub.len(), "object {obj}");
        for &id in order.order() {
            assert_eq!(schedule.get(id).unwrap().obj, *obj);
        }
        covered += order.len();

        // queuing-analysis cross-check.
        let rs = RequestSet::new(&sub, &t);
        let perm: Vec<usize> = order
            .order()
            .iter()
            .map(|&id| rs.index_of(id).expect("order id is in the sub-schedule"))
            .collect();
        let path = rs.path_cost(&perm, RequestSet::cost_arrow);
        let mst = mst_weight(&rs, RequestSet::cost_arrow);
        assert!(
            path >= mst - 1e-9,
            "object {obj}: socket order's tree path cost {path} undercuts the MST bound {mst}"
        );
    }
    assert_eq!(covered, schedule.len(), "orders partition the requests");
}

/// Sequential acquires (one in flight at a time) must be queued in issue order —
/// the same contract the simulator's centralized/sequential tests rely on.
#[test]
fn sequential_socket_acquires_queue_in_issue_order() {
    let rt = NetRuntime::spawn(&tree(15), NetConfig::instant());
    let sequence = [14usize, 3, 9, 0, 7];
    for &v in &sequence {
        let h = rt.handle(v);
        let req = h.acquire();
        h.release(req);
    }
    let report = rt.shutdown();
    let orders = report.validated_orders().unwrap();
    let order_nodes: Vec<usize> = orders[0]
        .1
        .order()
        .iter()
        .map(|&id| report.schedule().get(id).unwrap().node)
        .collect();
    assert_eq!(order_nodes, sequence);
}

/// Synchronous latency injection: on a two-node path with unit edge weight and a
/// 60 ms unit latency, a remote acquire needs one queue() hop and one token hop, so
/// it cannot complete in under ~120 ms. The instant config on the same topology
/// stays far below that — the difference is the injected delay, not socket cost.
#[test]
fn synchronous_latency_injection_delays_remote_acquires() {
    let t = RootedTree::from_tree_graph(&generators::path(2), 0);

    let unit = Duration::from_millis(60);
    let rt = NetRuntime::spawn(&t, NetConfig::synchronous(unit));
    let h = rt.handle(1);
    let start = Instant::now();
    let req = h.acquire();
    let delayed = start.elapsed();
    h.release(req);
    rt.shutdown();
    assert!(
        delayed >= Duration::from_millis(110),
        "two injected 60 ms hops finished in {delayed:?}"
    );

    let rt = NetRuntime::spawn(&t, NetConfig::instant());
    let h = rt.handle(1);
    let start = Instant::now();
    let req = h.acquire();
    let instant = start.elapsed();
    h.release(req);
    rt.shutdown();
    assert!(
        instant < Duration::from_millis(110),
        "undelayed loopback acquire took {instant:?}"
    );
}

/// The asynchronous model derived from a simulator RunConfig honors the async
/// floor: with `lo_factor = 0.9` every hop pays at least 90% of the link weight, so
/// a two-hop acquire pays at least ~2 × 0.9 × unit.
#[test]
fn async_floor_from_run_config_bounds_injected_latency_below() {
    let t = RootedTree::from_tree_graph(&generators::path(2), 0);
    let run = RunConfig::analysis(ProtocolKind::Arrow)
        .asynchronous(7)
        .with_async_floor(0.9);
    let unit = Duration::from_millis(60);
    let cfg = NetConfig::from_run_config(&run, unit);
    assert_eq!(cfg.jitter, Some((0.9, 7)));

    let rt = NetRuntime::spawn(&t, cfg);
    let h = rt.handle(1);
    let start = Instant::now();
    let req = h.acquire();
    let elapsed = start.elapsed();
    h.release(req);
    rt.shutdown();
    assert!(
        elapsed >= Duration::from_millis(100),
        "two hops floored at 54 ms each finished in {elapsed:?}"
    );
}

/// The mesh materializes the tree edges at bootstrap and only grows by the direct
/// token channels traffic actually needs — never the full n² mesh.
#[test]
fn mesh_stays_sparse() {
    let n = 32;
    let rt = NetRuntime::spawn_multi(&tree(n), 2, NetConfig::instant());
    let report = drive(rt, 2, 2, 4, 0x5BA2);
    let dialed = report.stats().connections_dialed;
    // n-1 tree edges, plus at most one direct channel per (granter, origin) pair
    // that actually exchanged a token; with 4 requester nodes that is far below n².
    assert!(
        dialed >= (n - 1) as u64,
        "tree edges materialized: {dialed}"
    );
    assert!(
        dialed < (n * n / 2) as u64,
        "mesh degenerated into all-pairs: {dialed} connections"
    );
    assert_eq!(report.stats().unexpected_frames, 0);
    report.validated_orders().unwrap();
}

/// Regression for the reactor's dial-race dedupe. Siblings 1 and 2 (no direct
/// tree edge, different shards under `with_shards(2)`) each hold one object's
/// token while the other sibling's request is queued directly behind it.
/// Barrier-synchronized releases then make both nodes dial each other at the
/// same instant for the direct token handoff. Whichever round actually races,
/// the two connections must collapse onto one canonical link with *both*
/// tokens delivered — a lost frame would hang a `wait_timeout` or break the
/// queuing order. The race is probabilistic, so fresh meshes are spun up until
/// the `dial_races_collapsed` counter witnesses a collapse.
#[test]
fn simultaneous_cross_dials_collapse_onto_one_link() {
    let mut collapsed = 0u64;
    let mut rounds = 0u32;
    for _ in 0..40 {
        rounds += 1;
        let cfg = NetConfig::instant().with_shards(2);
        let rt = NetRuntime::spawn_multi(&tree(3), 2, cfg);
        let h1 = rt.handle(1);
        let h2 = rt.handle(2);
        let held1 = h1.acquire_object(ObjectId(0));
        let held2 = h2.acquire_object(ObjectId(1));
        // Queue the crossing requests behind the held tokens so that each
        // release immediately sends a token across the missing 1↔2 link.
        let p2 = h2.start_acquire_object(ObjectId(0));
        let p1 = h1.start_acquire_object(ObjectId(1));
        std::thread::sleep(Duration::from_millis(20));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let releasers = [
            (rt.handle(1), ObjectId(0), held1),
            (rt.handle(2), ObjectId(1), held2),
        ]
        .map(|(h, obj, req)| {
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || {
                b.wait();
                h.release_object(obj, req);
            })
        });
        for r in releasers {
            r.join().unwrap();
        }
        let got2 = p2
            .wait_timeout(Duration::from_secs(10))
            .expect("token 1→2 must survive the dial race");
        let got1 = p1
            .wait_timeout(Duration::from_secs(10))
            .expect("token 2→1 must survive the dial race");
        h2.release_object(ObjectId(0), got2);
        h1.release_object(ObjectId(1), got1);
        let report = rt.shutdown();
        assert_eq!(report.stats().unexpected_frames, 0);
        report
            .validated_orders()
            .expect("orders stay valid through the dial race");
        collapsed += report.stats().dial_races_collapsed;
        if collapsed >= 1 {
            break;
        }
    }
    assert!(
        collapsed >= 1,
        "{rounds} rounds of simultaneous cross-releases never collapsed a dial race"
    );
}

/// A fault sever racing in-flight token writes: the 0↔1 tree edge is dropped
/// and restored in rapid cycles while workers on both leaves keep the tokens
/// moving through that edge. Token frames die mid-write when the sever lands;
/// the epoch bumps must regenerate them, every surviving round must still be
/// granted, and the journaled orders must satisfy the per-epoch churn
/// contract.
#[test]
fn link_sever_racing_in_flight_tokens_recovers_per_epoch_orders() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let cycles = 6u64;
    let final_epoch = 2 * cycles;
    let cfg = NetConfig::instant()
        .with_dial_retries(1)
        .with_fault_tolerance();
    let rt = NetRuntime::spawn_multi(&tree(3), 2, cfg);
    let fh = rt.fault_handle();
    let chaos_done = Arc::new(AtomicBool::new(false));
    let chaos = {
        let fh = fh.clone();
        let done = Arc::clone(&chaos_done);
        std::thread::spawn(move || {
            for c in 0..cycles {
                fh.apply(&FaultAction::DropLink(0, 1), 2 * c + 1);
                std::thread::sleep(Duration::from_millis(15));
                fh.apply(&FaultAction::RestoreLink(0, 1), 2 * c + 2);
                std::thread::sleep(Duration::from_millis(15));
            }
            done.store(true, Ordering::SeqCst);
        })
    };
    let mut joins = Vec::new();
    for v in [1usize, 2] {
        let h = rt.handle(v);
        let fh = fh.clone();
        let done = Arc::clone(&chaos_done);
        joins.push(std::thread::spawn(move || {
            for round in 0..4u32 {
                let obj = ObjectId((v as u32 + round) % 2);
                let mut attempts = 0;
                loop {
                    attempts += 1;
                    assert!(attempts <= 200, "node {v} round {round} never granted");
                    match h.try_acquire_object_timeout(obj, Duration::from_millis(500)) {
                        Ok(req) => {
                            h.release_object(obj, req);
                            break;
                        }
                        Err(_) => {
                            // A grant lost to a sever: once the chaos loop is
                            // over, re-broadcasting the final epoch is
                            // idempotent and heals any straggler.
                            if done.load(Ordering::SeqCst) {
                                fh.broadcast_epoch(final_epoch);
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    chaos.join().unwrap();
    let report = rt.shutdown();
    report
        .validate_churn(final_epoch)
        .expect("per-epoch order contract while severs race token writes");
    assert!(
        report.stats().acquisitions >= 8,
        "every worker round was eventually granted"
    );
}

/// The tentpole scaling claim: one process hosts ≥1024 nodes because thread
/// count is O(shards), not O(nodes). A 1025-node mesh materializes its 1024
/// tree links and serves a deep-leaf acquire while the whole process stays
/// under a hundred threads — the old thread-per-connection tier would need
/// thousands.
#[test]
fn process_hosts_1024_nodes_with_o_shards_threads() {
    fn thread_count() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .expect("Threads: line")
            .trim()
            .parse()
            .expect("thread count")
    }

    let n = 1025;
    let rt = NetRuntime::spawn(&tree(n), NetConfig::instant());
    let threads = thread_count();
    assert!(
        threads < 100,
        "hosting {n} nodes takes {threads} threads; the reactor pool must stay O(shards)"
    );

    // The mesh is real: every tree edge was dialed, and a deep leaf's acquire
    // walks the full path to the root and back.
    let h = rt.handle(n - 1);
    let req = h.acquire();
    h.release(req);
    let report = rt.shutdown();
    assert!(
        report.stats().connections_dialed >= (n - 1) as u64,
        "all {} tree edges must materialize, saw {}",
        n - 1,
        report.stats().connections_dialed
    );
    assert_eq!(report.stats().unexpected_frames, 0);
    report
        .validated_orders()
        .expect("1025-node order validates");
}
